package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"dimboost/internal/dataset"
	"dimboost/internal/histogram"
	"dimboost/internal/loss"
	"dimboost/internal/ooc"
	"dimboost/internal/parallel"
	"dimboost/internal/predict"
	"dimboost/internal/sketch"
	"dimboost/internal/tree"
)

// PhaseTimes accumulates wall time per training phase; the Table 3 and
// Figure 13 experiments read these.
type PhaseTimes struct {
	Sketch    time.Duration
	Gradients time.Duration
	BuildHist time.Duration
	FindSplit time.Duration
	SplitTree time.Duration
}

// Total sums all phases.
func (p PhaseTimes) Total() time.Duration {
	return p.Sketch + p.Gradients + p.BuildHist + p.FindSplit + p.SplitTree
}

// Local sums the purely local phases, excluding FindSplit — which in the
// distributed runtime is dominated by pull round-trips and server-side work
// and therefore belongs to communication in a loading/compute/comm
// decomposition (Fig. 13).
func (p PhaseTimes) Local() time.Duration {
	return p.Sketch + p.Gradients + p.BuildHist + p.SplitTree
}

// TreeEvent reports progress after each finished tree; used to draw the
// paper's convergence curves (training error vs time, Fig. 12).
type TreeEvent struct {
	Tree      int
	TrainLoss float64
	Elapsed   time.Duration
}

// Trainer runs single-process GBDT training. It is also the computational
// engine reused by every distributed strategy in internal/baselines and
// internal/cluster.
//
// Every phase of the boosting loop — gradients, weighted sketches, histogram
// builds, split finding, tree splitting, and scoring — runs through one
// shared worker pool sized by Config.Parallelism. The pool's fixed chunk
// grids and ordered reductions make the trained model bit-identical for
// every parallelism value (DESIGN.md invariant 15).
type Trainer struct {
	cfg   Config
	data  *dataset.Dataset
	cands []sketch.Candidates
	rng   *rand.Rand
	pool  *parallel.Pool

	// src is the disk-resident data path (out-of-core mode); exactly one of
	// data/src is non-nil. labels is the resident label column of either
	// path.
	src    *ooc.Source
	labels []float32

	// splitMask is the out-of-core split scratch: per-row goLeft verdicts,
	// precomputed chunk by chunk so SplitStable's predicate never touches
	// disk (one bool per row, part of the documented fixed working set).
	splitMask []bool

	// predScratch is the reusable per-tree scoring buffer of the
	// instance-sampling path.
	predScratch []float64

	// OnTree, when set, is invoked after each completed tree.
	OnTree func(TreeEvent)

	// Validation, when set together with Config.EarlyStoppingRounds,
	// enables early stopping: training stops once the validation loss has
	// not improved for that many trees and the model is truncated to the
	// best prefix.
	Validation *dataset.Dataset

	// Init, when set, warm-starts training: boosting continues from the
	// given model's predictions and its trees are prepended to the result.
	// The loss kinds must match.
	Init *Model

	// Times accumulates phase timings for the experiment harness.
	Times PhaseTimes

	// DerivedHists counts histograms obtained by subtraction instead of a
	// data pass (Config.HistSubtraction).
	DerivedHists int

	// BestValidationLoss reports the winning validation loss after a run
	// with early stopping.
	BestValidationLoss float64
}

// NewTrainer validates the configuration and prepares a trainer for the
// dataset.
func NewTrainer(d *dataset.Dataset, cfg Config) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NoNodeIndex && cfg.InstanceSampleRatio < 1 {
		return nil, fmt.Errorf("core: NoNodeIndex (ablation) does not support instance sampling")
	}
	return &Trainer{
		cfg:    cfg,
		data:   d,
		labels: d.Labels,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		pool:   parallel.New(cfg.ResolvedParallelism()),
	}, nil
}

// Candidates returns the per-feature split candidates, computing them on
// first use (CREATE_SKETCH + PULL_SKETCH phases).
func (tr *Trainer) Candidates() []sketch.Candidates {
	if tr.cands == nil {
		start := time.Now()
		set := sketch.NewSet(tr.numFeatures(), tr.cfg.sketchEps())
		if tr.src != nil {
			// Chunks stream sequentially in ascending order, so every value
			// inserts in global row order — the same sketch state as one
			// AddDataset pass over the resident dataset.
			tr.src.ForEachChunkSeq(func(_, _, _ int, d *dataset.Dataset) error {
				set.AddDataset(d)
				return nil
			})
		} else {
			set.AddDataset(tr.data)
		}
		tr.cands = set.Candidates(tr.cfg.NumCandidates)
		d := time.Since(start)
		tr.Times.Sketch += d
		trainMetrics().spans.Record(-1, -1, -1, "sketch", start, d)
	}
	return tr.cands
}

// SetCandidates installs externally computed candidates (the distributed
// runtime merges sketches on the parameter server and shares the result).
func (tr *Trainer) SetCandidates(c []sketch.Candidates) { tr.cands = c }

// SampleFeatures draws σM distinct features, sorted ascending. With σ == 1
// it returns the identity.
func (tr *Trainer) SampleFeatures() []int32 {
	m := tr.numFeatures()
	if tr.cfg.FeatureSampleRatio >= 1 {
		return histogram.AllFeatures(m)
	}
	k := int(tr.cfg.FeatureSampleRatio * float64(m))
	if k < 1 {
		k = 1
	}
	perm := tr.rng.Perm(m)[:k]
	out := make([]int32, k)
	for i, f := range perm {
		out[i] = int32(f)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// scoreEngine compiles trees into a batch scorer bounded by the trainer's
// pool. Every scoring loop in the trainer goes through the compiled engine —
// the interpreted tree walk runs only on explicit request (the PR 4
// invariant).
func (tr *Trainer) scoreEngine(trees []*tree.Tree, base float64) (*predict.Engine, error) {
	eng, err := predict.Compile(trees, base)
	if err != nil {
		return nil, err
	}
	eng.Workers = tr.pool.Workers()
	return eng, nil
}

// Train runs the full boosting loop and returns the model.
func (tr *Trainer) Train() (*Model, error) {
	cands := tr.Candidates()
	if err := tr.srcErr(); err != nil {
		return nil, err
	}
	n := tr.numRows()
	lf := loss.New(tr.cfg.Loss)
	preds := make([]float64, n)
	grad := make([]float64, n)
	hess := make([]float64, n)
	model := &Model{Loss: tr.cfg.Loss}
	start := time.Now()

	warmTrees := 0
	if tr.Init != nil {
		if tr.Init.Loss != tr.cfg.Loss {
			return nil, fmt.Errorf("core: warm start loss %s != config loss %s", tr.Init.Loss, tr.cfg.Loss)
		}
		model.BaseScore = tr.Init.BaseScore
		model.Trees = append(model.Trees, tr.Init.Trees...)
		warmTrees = len(tr.Init.Trees)
		eng, err := tr.scoreEngine(tr.Init.Trees, tr.Init.BaseScore)
		if err != nil {
			return nil, fmt.Errorf("core: compiling warm-start model: %w", err)
		}
		if err := tr.scoreTrainInto(eng, preds); err != nil {
			return nil, err
		}
	}

	// Early-stopping state.
	var valPreds, valScratch []float64
	bestLoss := math.Inf(1)
	bestTrees := warmTrees
	sinceBest := 0
	earlyStop := tr.Validation != nil && tr.cfg.EarlyStoppingRounds > 0
	if tr.Validation != nil {
		valPreds = make([]float64, tr.Validation.NumRows())
		valScratch = make([]float64, len(valPreds))
		eng, err := tr.scoreEngine(model.Trees, model.BaseScore)
		if err != nil {
			return nil, fmt.Errorf("core: compiling validation scorer: %w", err)
		}
		eng.PredictBatchInto(tr.Validation, valPreds)
	}

	m := trainMetrics()
	for t := 0; t < tr.cfg.NumTrees; t++ {
		treeStart := time.Now()
		gs := time.Now()
		tr.pool.For(n, parallel.RowChunk, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				grad[i], hess[i] = lf.Gradients(float64(tr.labels[i]), preds[i])
			}
		})
		gd := time.Since(gs)
		tr.Times.Gradients += gd
		m.spans.Record(-1, t, -1, "gradients", gs, gd)

		treeCands := cands
		if tr.cfg.WeightedCandidates {
			ws := time.Now()
			treeCands = tr.weightedCandidates(hess)
			wd := time.Since(ws)
			tr.Times.Sketch += wd
			m.spans.Record(-1, t, -1, "sketch", ws, wd)
		}
		features := tr.SampleFeatures()
		layout, err := histogram.NewLayout(features, treeCands, tr.numFeatures())
		if err != nil {
			return nil, err
		}
		tn, err := tr.growTree(t, layout, grad, hess, preds)
		if err != nil {
			return nil, err
		}
		model.Trees = append(model.Trees, tn)
		m.trees.Inc()
		m.spans.Record(-1, t, -1, "tree", treeStart, time.Since(treeStart))

		if tr.OnTree != nil {
			tr.OnTree(TreeEvent{
				Tree:      t,
				TrainLoss: loss.MeanLoss(lf, tr.labels, preds),
				Elapsed:   time.Since(start),
			})
		}
		if err := tr.srcErr(); err != nil {
			return nil, err
		}

		if tr.Validation != nil {
			eng, err := tr.scoreEngine([]*tree.Tree{tn}, 0)
			if err != nil {
				return nil, fmt.Errorf("core: compiling tree %d scorer: %w", t, err)
			}
			eng.PredictBatchInto(tr.Validation, valScratch)
			tr.pool.For(len(valPreds), parallel.RowChunk, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					valPreds[i] += valScratch[i]
				}
			})
			vl := loss.MeanLoss(lf, tr.Validation.Labels, valPreds)
			if vl < bestLoss-1e-12 {
				bestLoss = vl
				bestTrees = len(model.Trees)
				sinceBest = 0
			} else if earlyStop {
				sinceBest++
				if sinceBest >= tr.cfg.EarlyStoppingRounds {
					break
				}
			}
		}
	}
	if earlyStop {
		model.Trees = model.Trees[:bestTrees]
		tr.BestValidationLoss = bestLoss
	}
	return model, nil
}

// weightedCandidates proposes per-feature split candidates from hessian-
// weighted sketches over the current iteration's second-order gradients.
// Rows are cut into the fixed parallel.SketchChunk grid; each chunk builds
// its own per-feature sketches and the chunk partials merge in ascending
// chunk order, so the sketch content depends only on the grid, never on the
// worker count.
func (tr *Trainer) weightedCandidates(hess []float64) []sketch.Candidates {
	m := tr.numFeatures()
	n := tr.numRows()
	eps := tr.cfg.sketchEps()
	sketches := make([]*sketch.WeightedGK, m)
	parallel.ReduceOrdered(tr.pool, n, parallel.SketchChunk,
		func(_, lo, hi int) []*sketch.WeightedGK {
			part := make([]*sketch.WeightedGK, m)
			addRow := func(in dataset.Instance, w float64) {
				for j, f := range in.Indices {
					s := part[f]
					if s == nil {
						s = sketch.NewWeightedGK(eps)
						part[f] = s
					}
					s.Insert(float64(in.Values[j]), w)
				}
			}
			if tr.src != nil {
				// The sketch grid (parallel.SketchChunk) is coarser than the
				// storage grid; walking the range chunk run by chunk run
				// inserts the same values in the same order as the resident
				// loop below.
				tr.src.ForRowRange(lo, hi, func(d *dataset.Dataset, base, rlo, rhi int) {
					for i := rlo; i < rhi; i++ {
						addRow(d.Row(i-base), hess[i])
					}
				})
			} else {
				for i := lo; i < hi; i++ {
					addRow(tr.data.Row(i), hess[i])
				}
			}
			return part
		},
		func(_ int, part []*sketch.WeightedGK) {
			for f, s := range part {
				if s == nil {
					continue
				}
				if sketches[f] == nil {
					sketches[f] = s
				} else {
					sketches[f].Merge(s)
				}
			}
		})
	out := make([]sketch.Candidates, m)
	tr.pool.For(m, 256, func(lo, hi int) {
		for f := lo; f < hi; f++ {
			out[f] = sketch.ProposeWeighted(sketches[f], tr.cfg.NumCandidates)
		}
	})
	return out
}

// nodeState tracks the gradient sums of one active tree node.
type nodeState struct {
	g, h float64
}

// splitTask carries one buildable node through a layer's three phases:
// its histogram is built in BUILD_HISTOGRAM, scanned in FIND_SPLIT, and the
// winning split applied in SPLIT_TREE.
type splitTask struct {
	node int
	st   nodeState
	h    *histogram.Histogram
}

// growTree builds one regression tree layer by layer (§4.4 BUILD_HISTOGRAM →
// FIND_SPLIT → SPLIT_TREE) and updates preds with the new leaf weights.
func (tr *Trainer) growTree(treeIdx int, layout *histogram.Layout, grad, hess, preds []float64) (*tree.Tree, error) {
	m := trainMetrics()
	cfg := tr.cfg
	n := tr.numRows()
	tn := tree.New(cfg.MaxDepth)
	maxNodes := tree.MaxNodes(cfg.MaxDepth)

	// Instance subsampling: the tree is grown from a per-tree row subset
	// (stochastic gradient boosting); predictions still update everywhere.
	sampling := cfg.InstanceSampleRatio < 1
	var idx *tree.Index
	if sampling {
		k := int(cfg.InstanceSampleRatio * float64(n))
		if k < 1 {
			k = 1
		}
		perm := tr.rng.Perm(n)[:k]
		rows := make([]int32, k)
		for i, r := range perm {
			rows[i] = int32(r)
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a] < rows[b] })
		idx = tree.NewIndexFrom(rows, maxNodes)
	} else {
		idx = tree.NewIndex(n, maxNodes)
	}

	// nodeOf supports the NoNodeIndex ablation: per-instance node ids so a
	// node's rows can be recovered by a full scan.
	var nodeOf []int32
	if cfg.NoNodeIndex {
		nodeOf = make([]int32, n)
	}
	rowsFor := func(node int) []int32 {
		if !cfg.NoNodeIndex {
			return idx.Rows(node)
		}
		var rows []int32
		for i, nd := range nodeOf {
			if nd == int32(node) {
				rows = append(rows, int32(i))
			}
		}
		return rows
	}

	states := make(map[int]nodeState, maxNodes)
	var rootG, rootH float64
	for _, r := range idx.Rows(0) {
		rootG += grad[r]
		rootH += hess[r]
	}
	states[0] = nodeState{rootG, rootH}

	// Quantize the dataset once per tree: every nonzero's bin id under this
	// tree's candidates, reused by every node of every layer for both
	// histogram construction and splitting (Config.NoBinning ablates). In
	// out-of-core mode the quantized mirror spills to a memory-mapped
	// scratch file instead of materializing.
	var binned *histogram.Binned
	var spilled *ooc.SpilledBinned
	if tr.src != nil {
		bs := time.Now()
		var err error
		spilled, err = tr.src.BuildBinned(layout, tr.pool)
		if err != nil {
			return nil, err
		}
		defer spilled.Close()
		bd := time.Since(bs)
		tr.Times.BuildHist += bd
		m.spans.Record(-1, treeIdx, -1, "binning", bs, bd)
	} else if !cfg.NoBinning {
		bs := time.Now()
		binned = histogram.NewBinned(tr.data, layout, tr.pool.Workers())
		bd := time.Since(bs)
		tr.Times.BuildHist += bd
		m.spans.Record(-1, treeIdx, -1, "binning", bs, bd)
	}

	active := []int{0}
	// Under a memory budget, cap the free list at the concurrent working set
	// (one partial per builder plus one merge target) so idle histograms from
	// wide layers cannot pile up; recycling is allocation-only, so the cap
	// cannot affect results.
	var pool *histogram.Pool
	if tr.src != nil {
		pool = histogram.NewPoolCap(layout, tr.pool.Workers()+1)
	} else {
		pool = histogram.NewPool(layout)
	}
	buildOpts := histogram.BuildOptions{
		Parallelism: tr.pool.Workers(),
		BatchSize:   cfg.BatchSize,
		Dense:       cfg.DenseBuild,
		Pool:        pool,
	}

	// Histogram subtraction (Config.HistSubtraction): keep split nodes'
	// histograms one layer back; a right child's histogram is then
	// parent − left sibling, skipping one data pass per split.
	var prevHists, curHists map[int]*histogram.Histogram
	avgNNZ := tr.avgNNZ()
	if cfg.HistSubtraction {
		prevHists = map[int]*histogram.Histogram{}
		curHists = map[int]*histogram.Histogram{}
	}

	numPos := layout.NumFeatures()
	ranges := (numPos + parallel.PosChunk - 1) / parallel.PosChunk

	for depth := 0; depth < cfg.MaxDepth && len(active) > 0; depth++ {
		var next []int
		layerStart := time.Now()
		atMax := depth == cfg.MaxDepth-1

		// BUILD_HISTOGRAM: nodes in order; each build fans out over its row
		// batches internally (histogram.Build* through the shared machinery).
		bs := time.Now()
		var tasks []splitTask
		for _, node := range active {
			st := states[node]
			if atMax || idxCount(idx, nodeOf, node) == 0 {
				tn.SetLeaf(node, cfg.LearningRate*LeafWeight(st.g, st.h, cfg.Lambda))
				continue
			}
			h := pool.Get()
			derived := false
			// Deriving costs O(TotalBuckets); only cheaper than a direct
			// build when the node holds enough nonzeros.
			worthDeriving := float64(idx.Count(node))*avgNNZ > float64(layout.TotalBuckets)
			if cfg.HistSubtraction && worthDeriving && node != 0 && node == tree.Right(tree.Parent(node)) {
				parent := prevHists[tree.Parent(node)]
				left := curHists[tree.Left(tree.Parent(node))]
				if parent != nil && left != nil {
					h.SetSub(parent, left)
					derived = true
					tr.DerivedHists++
					m.subtraction.Inc()
				}
			}
			if !derived {
				switch {
				case spilled != nil:
					spilled.BuildHistogram(h, rowsFor(node), grad, hess, buildOpts)
				case binned != nil:
					histogram.BuildBinned(h, binned, rowsFor(node), grad, hess, buildOpts)
				default:
					histogram.Build(h, tr.data, rowsFor(node), grad, hess, buildOpts)
				}
			}
			if cfg.HistSubtraction {
				curHists[node] = h
			}
			tasks = append(tasks, splitTask{node, st, h})
		}
		buildD := time.Since(bs)
		tr.Times.BuildHist += buildD

		// FIND_SPLIT: Algorithm 1 fanned out over (node × feature-range)
		// tasks; each node's partial bests fold in ascending range order
		// (BestOf), so the chosen split is worker-count-independent.
		fs := time.Now()
		splits := make([]Split, len(tasks))
		if len(tasks) > 0 && ranges > 0 {
			bests := make([]Split, len(tasks)*ranges)
			tr.pool.Tasks(len(bests), func(j int) {
				t := &tasks[j/ranges]
				pLo := (j % ranges) * parallel.PosChunk
				pHi := min(pLo+parallel.PosChunk, numPos)
				bests[j] = FindSplitRange(t.h, pLo, pHi, t.st.g, t.st.h, cfg.Lambda, cfg.Gamma, cfg.MinChildHessian)
			})
			for ti := range tasks {
				splits[ti] = BestOf(bests[ti*ranges : (ti+1)*ranges]...)
			}
		}
		findD := time.Since(fs)
		tr.Times.FindSplit += findD
		if !cfg.HistSubtraction {
			for _, t := range tasks {
				pool.Put(t.h) // dead past FIND_SPLIT; recycle immediately
			}
		}

		// SPLIT_TREE: apply the winning splits; each node's partition fans
		// out over row chunks (stable concatenation, see Index.SplitStable).
		ss := time.Now()
		for ti := range tasks {
			t := &tasks[ti]
			split := splits[ti]
			if !split.Found {
				tn.SetLeaf(t.node, cfg.LearningRate*LeafWeight(t.st.g, t.st.h, cfg.Lambda))
				continue
			}
			tn.SetSplit(t.node, split.Feature, split.Value, split.Gain)
			var goLeft func(int32) bool
			if spilled != nil {
				// Precompute the verdicts chunk by chunk into the row mask;
				// the predicate itself is then a pure array read — identical
				// to SplitPredicate on the resident binned matrix, and safe
				// from every SplitStable worker.
				p := layout.Pos(split.Feature)
				k := layout.Cands[p].Bucket(split.Value)
				if tr.splitMask == nil {
					tr.splitMask = make([]bool, n)
				}
				spilled.Classify(tr.pool, idx.Rows(t.node), p, k, tr.splitMask)
				mask := tr.splitMask
				goLeft = func(r int32) bool { return mask[r] }
			} else {
				goLeft = SplitPredicate(tr.data, binned, layout, split)
			}
			idx.SplitStable(t.node, goLeft, tr.pool)
			if cfg.NoNodeIndex {
				l, r := int32(tree.Left(t.node)), int32(tree.Right(t.node))
				nd := int32(t.node)
				tr.pool.For(n, parallel.RowChunk, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						if nodeOf[i] == nd {
							if goLeft(int32(i)) {
								nodeOf[i] = l
							} else {
								nodeOf[i] = r
							}
						}
					}
				})
			}
			states[tree.Left(t.node)] = nodeState{split.LeftG, split.LeftH}
			states[tree.Right(t.node)] = nodeState{split.RightG, split.RightH}
			next = append(next, tree.Left(t.node), tree.Right(t.node))
		}
		splitD := time.Since(ss)
		tr.Times.SplitTree += splitD

		if cfg.HistSubtraction {
			// keep only the histograms of nodes that actually split — the
			// next layer subtracts against them; everything evicted goes
			// back to the pool
			for _, h := range prevHists {
				pool.Put(h)
			}
			kept := map[int]*histogram.Histogram{}
			for _, child := range next {
				p := tree.Parent(child)
				if h := curHists[p]; h != nil {
					kept[p] = h
				}
			}
			for node, h := range curHists {
				if kept[node] != h {
					pool.Put(h)
				}
			}
			prevHists = kept
			curHists = map[int]*histogram.Histogram{}
		}
		// Per-layer aggregates: one span per phase per layer, summed over
		// the layer's nodes, anchored at the layer's start.
		m.spans.Record(-1, treeIdx, depth, "build_hist", layerStart, buildD)
		m.spans.Record(-1, treeIdx, depth, "find_split", layerStart, findD)
		m.spans.Record(-1, treeIdx, depth, "split_tree", layerStart, splitD)
		active = next
	}

	// A streaming I/O failure inside a pool worker records sticky state and
	// leaves partial accumulations behind; abort before using them.
	if err := tr.srcErr(); err != nil {
		return nil, err
	}

	if sampling {
		// rows outside the subsample never entered the index; score every
		// row through a compiled engine over the finished tree instead
		eng, err := tr.scoreEngine([]*tree.Tree{tn}, 0)
		if err != nil {
			return nil, fmt.Errorf("core: compiling tree scorer: %w", err)
		}
		if tr.predScratch == nil {
			tr.predScratch = make([]float64, n)
		}
		scratch := tr.predScratch
		eng.PredictBatchInto(tr.data, scratch)
		tr.pool.For(n, parallel.RowChunk, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				preds[i] += scratch[i]
			}
		})
		return tn, nil
	}
	// Update predictions leaf by leaf using the index ranges, chunked over
	// each leaf's rows.
	for node := range tn.Nodes {
		nd := &tn.Nodes[node]
		if !nd.Used || !nd.Leaf || nd.Weight == 0 {
			continue
		}
		rows := rowsFor(node)
		w := nd.Weight
		tr.pool.For(len(rows), parallel.RowChunk, func(lo, hi int) {
			for _, r := range rows[lo:hi] {
				preds[r] += w
			}
		})
	}
	return tn, nil
}

// SplitPredicate returns the goLeft test of a split. With a binned matrix
// the float comparison v <= SplitValue(k) becomes bin(v) <= k: the split
// value is always a cut, Candidates.Bucket recovers its bucket index k
// exactly, and by the bucket semantics (bucket k holds values <= Cuts[k],
// values above every cut land in the last, never-proposed bucket) the two
// predicates partition rows identically — so binned and float training
// produce bit-identical models. The returned predicate only reads shared
// state and is safe for concurrent use (SplitStable calls it from every
// pool worker).
func SplitPredicate(d *dataset.Dataset, binned *histogram.Binned, layout *histogram.Layout, split Split) func(r int32) bool {
	f, v := int(split.Feature), split.Value
	if binned == nil {
		return func(r int32) bool {
			return float64(d.Row(int(r)).Feature(f)) <= v
		}
	}
	p := layout.Pos(split.Feature)
	k := layout.Cands[p].Bucket(v)
	return func(r int32) bool {
		return binned.Bin(int(r), p) <= k
	}
}

// idxCount returns the instance count of a node under either row-tracking
// scheme.
func idxCount(idx *tree.Index, nodeOf []int32, node int) int {
	if nodeOf == nil {
		return idx.Count(node)
	}
	c := 0
	for _, nd := range nodeOf {
		if nd == int32(node) {
			c++
		}
	}
	return c
}

// Train is the one-call convenience API: sketch, train, return the model.
func Train(d *dataset.Dataset, cfg Config) (*Model, error) {
	tr, err := NewTrainer(d, cfg)
	if err != nil {
		return nil, err
	}
	return tr.Train()
}
