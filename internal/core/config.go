// Package core implements the GBDT training algorithm itself: the greedy
// split finding of Algorithm 1, layer-wise tree growth (§4.4), and a
// single-process multi-threaded trainer that serves both as the reference
// implementation and as the per-worker engine of the distributed runtime.
package core

import (
	"fmt"
	"runtime"

	"dimboost/internal/loss"
	"dimboost/internal/ooc"
)

// Config holds every GBDT hyper-parameter. Field names follow the paper's
// protocol section (§7.1): T trees, d maximal depth, K split candidates,
// σ feature sampling ratio, η learning rate, b batch size, q threads,
// r compressed bits.
type Config struct {
	// NumTrees is T, the number of boosting rounds.
	NumTrees int
	// MaxDepth is d, the maximal tree depth (1 = a single leaf).
	MaxDepth int
	// NumCandidates is K, the number of split candidates per feature.
	NumCandidates int
	// LearningRate is the shrinkage η applied to leaf weights.
	LearningRate float64
	// Lambda is the L2 leaf-weight regularizer λ.
	Lambda float64
	// Gamma is the per-leaf complexity penalty γ.
	Gamma float64
	// MinChildHessian rejects splits whose child hessian sums fall below
	// this threshold (prevents empty children).
	MinChildHessian float64
	// FeatureSampleRatio is σ, the fraction of features sampled per tree.
	FeatureSampleRatio float64
	// InstanceSampleRatio subsamples rows per tree (stochastic gradient
	// boosting); 1 uses every row. Predictions still update for all rows.
	InstanceSampleRatio float64
	// HistSubtraction derives each split's larger child histogram by
	// subtracting the smaller child's from the parent's, halving histogram
	// construction work below the root (an optimization used by XGBoost
	// and LightGBM; kept off by default to match the paper's DimBoost).
	HistSubtraction bool
	// EarlyStoppingRounds stops training when the validation loss (see
	// Trainer.Validation) has not improved for this many consecutive
	// trees, keeping the best prefix; 0 disables.
	EarlyStoppingRounds int
	// WeightedCandidates recomputes split candidates every tree from
	// hessian-weighted quantile sketches (XGBoost's weighted sketch, which
	// the paper cites as WOS), so buckets hold equal hessian mass. Costs
	// one extra O(nnz) pass per tree.
	WeightedCandidates bool
	// Loss selects the training objective.
	Loss loss.Kind
	// SketchEps is the quantile-sketch rank error used when proposing
	// split candidates; 0 defaults to 1/(2K).
	SketchEps float64
	// Parallelism is q, the worker count of the shared training pool
	// (gradients, sketches, histogram builds, split finding, tree
	// splitting, scoring). Values < 1 resolve to runtime.GOMAXPROCS(0).
	// The trained model is bit-identical for every value, including 1
	// (DESIGN.md invariant 15).
	Parallelism int
	// BatchSize is b, the instance batch size of the parallel builder.
	BatchSize int
	// Seed drives feature sampling and any stochastic component.
	Seed int64

	// MemoryBudget bounds the bytes the out-of-core data path may keep
	// resident (chunk caches + labels); 0 keeps the in-memory path. A
	// non-zero budget routes training through internal/ooc: the dataset
	// stays on disk in the chunked binary format and the per-tree binned
	// mirror spills to memory-mapped scratch files, with results
	// bit-identical to in-memory training (see TrainOutOfCore).
	MemoryBudget ooc.Budget

	// DenseBuild disables the sparsity-aware construction (ablation,
	// Table 3 row 1).
	DenseBuild bool
	// NoNodeIndex disables the node-to-instance index: each node's builder
	// filters a full dataset scan instead (ablation, Table 3).
	NoNodeIndex bool
	// NoBinning disables the per-tree quantized (binned) dataset: histogram
	// construction and node splitting fall back to the float path, paying a
	// binary search per nonzero per layer (ablation; results are
	// bit-identical either way).
	NoBinning bool
}

// DefaultConfig mirrors the paper's protocol: T=20, d=7, K=20, σ=1, η=0.1.
// (The paper trains with η=0.01 on 110M-row datasets; laptop-scale runs
// converge better with 0.1.)
func DefaultConfig() Config {
	return Config{
		NumTrees:            20,
		MaxDepth:            7,
		NumCandidates:       20,
		LearningRate:        0.1,
		Lambda:              1.0,
		Gamma:               0.0,
		MinChildHessian:     1e-4,
		FeatureSampleRatio:  1.0,
		InstanceSampleRatio: 1.0,
		Loss:                loss.Logistic,
		Parallelism:         runtime.GOMAXPROCS(0),
		BatchSize:           10000,
		Seed:                42,
	}
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.NumTrees < 1:
		return fmt.Errorf("core: NumTrees %d < 1", c.NumTrees)
	case c.MaxDepth < 1 || c.MaxDepth > 24:
		return fmt.Errorf("core: MaxDepth %d outside [1,24]", c.MaxDepth)
	case c.NumCandidates < 1:
		return fmt.Errorf("core: NumCandidates %d < 1", c.NumCandidates)
	case c.LearningRate <= 0 || c.LearningRate > 1:
		return fmt.Errorf("core: LearningRate %v outside (0,1]", c.LearningRate)
	case c.Lambda < 0:
		return fmt.Errorf("core: Lambda %v < 0", c.Lambda)
	case c.Gamma < 0:
		return fmt.Errorf("core: Gamma %v < 0", c.Gamma)
	case c.FeatureSampleRatio <= 0 || c.FeatureSampleRatio > 1:
		return fmt.Errorf("core: FeatureSampleRatio %v outside (0,1]", c.FeatureSampleRatio)
	case c.InstanceSampleRatio <= 0 || c.InstanceSampleRatio > 1:
		return fmt.Errorf("core: InstanceSampleRatio %v outside (0,1]", c.InstanceSampleRatio)
	case c.EarlyStoppingRounds < 0:
		return fmt.Errorf("core: EarlyStoppingRounds %d < 0", c.EarlyStoppingRounds)
	case c.SketchEps < 0 || c.SketchEps >= 1:
		return fmt.Errorf("core: SketchEps %v outside [0,1)", c.SketchEps)
	case c.MemoryBudget < 0:
		return fmt.Errorf("core: MemoryBudget %d < 0", c.MemoryBudget)
	}
	return nil
}

// ResolvedParallelism returns the effective worker count of the training
// pool: Parallelism, or runtime.GOMAXPROCS(0) when unset (< 1).
func (c Config) ResolvedParallelism() int {
	if c.Parallelism >= 1 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// sketchEps resolves the default rank error.
func (c Config) sketchEps() float64 {
	if c.SketchEps > 0 {
		return c.SketchEps
	}
	return 1 / (2 * float64(c.NumCandidates))
}
