package core

import (
	"sync"

	"dimboost/internal/obs"
)

// trainObs groups the trainer's observability instruments: the shared
// "train" span log (single-process trainer and cluster workers both record
// into it; the Worker field tells them apart) plus counters the span
// timeline cannot express.
type trainObs struct {
	spans       *obs.SpanLog
	trees       *obs.Counter
	subtraction *obs.Counter
}

var (
	toOnce sync.Once
	toInst *trainObs
)

func trainMetrics() *trainObs {
	toOnce.Do(func() {
		r := obs.Default()
		toInst = &trainObs{
			spans:       r.SpanLog("train", 4096),
			trees:       r.Counter("dimboost_train_trees_total", "Trees finished by the boosting loop."),
			subtraction: r.Counter("dimboost_train_hist_subtraction_total", "Histograms derived by parent-minus-sibling subtraction instead of a data pass."),
		}
	})
	return toInst
}
