package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dimboost/internal/dataset"
	"dimboost/internal/tree"
)

// FeatureImportance summarizes how much each feature contributes to a
// trained model.
type FeatureImportance struct {
	// Feature is the global feature id.
	Feature int32
	// Gain is the total objective gain contributed by splits on the
	// feature ("gain" importance).
	Gain float64
	// Splits is the number of splits using the feature ("weight"
	// importance).
	Splits int
}

// Importance computes per-feature importance over all trees, sorted by
// descending gain.
func (m *Model) Importance() []FeatureImportance {
	acc := map[int32]*FeatureImportance{}
	for _, t := range m.Trees {
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if !n.Used || n.Leaf {
				continue
			}
			fi := acc[n.Feature]
			if fi == nil {
				fi = &FeatureImportance{Feature: n.Feature}
				acc[n.Feature] = fi
			}
			fi.Gain += n.Gain
			fi.Splits++
		}
	}
	out := make([]FeatureImportance, 0, len(acc))
	for _, fi := range acc {
		out = append(out, *fi)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Gain != out[b].Gain {
			return out[a].Gain > out[b].Gain
		}
		return out[a].Feature < out[b].Feature
	})
	return out
}

// NumNodes counts the used nodes across all trees.
func (m *Model) NumNodes() (internal, leaves int) {
	for _, t := range m.Trees {
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if !n.Used {
				continue
			}
			if n.Leaf {
				leaves++
			} else {
				internal++
			}
		}
	}
	return
}

// Dump writes a human-readable description of the model: per-tree node
// listings in the style of XGBoost's text dump.
func (m *Model) Dump(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "model: loss=%s trees=%d base=%g\n", m.Loss, len(m.Trees), m.BaseScore); err != nil {
		return err
	}
	for ti, t := range m.Trees {
		if _, err := fmt.Fprintf(w, "tree %d:\n", ti); err != nil {
			return err
		}
		if err := dumpNode(w, t, 0, 1); err != nil {
			return err
		}
	}
	return nil
}

func dumpNode(w io.Writer, t *tree.Tree, node, depth int) error {
	n := &t.Nodes[node]
	if !n.Used {
		return nil
	}
	indent := strings.Repeat("  ", depth)
	if n.Leaf {
		_, err := fmt.Fprintf(w, "%s%d: leaf=%g\n", indent, node, n.Weight)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s%d: [f%d <= %g] gain=%g\n", indent, node, n.Feature, n.Value, n.Gain); err != nil {
		return err
	}
	if err := dumpNode(w, t, tree.Left(node), depth+1); err != nil {
		return err
	}
	return dumpNode(w, t, tree.Right(node), depth+1)
}

// PredictLeaves returns, for each tree, the leaf node id the instance lands
// in — the "GBDT feature transform" used to feed tree leaves into linear
// models.
func (m *Model) PredictLeaves(in dataset.Instance) []int {
	out := make([]int, len(m.Trees))
	for i, t := range m.Trees {
		out[i] = t.PredictNode(in)
	}
	return out
}
