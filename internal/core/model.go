package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"dimboost/internal/dataset"
	"dimboost/internal/loss"
	"dimboost/internal/predict"
	"dimboost/internal/tree"
)

// Model is a trained GBDT ensemble: ŷ_i = base + Σ_t f_t(x_i), with
// shrinkage already folded into each tree's leaf weights (Eq. 1).
type Model struct {
	Loss      loss.Kind
	BaseScore float64
	Trees     []*tree.Tree

	// compiled caches the inference engines built from Trees — one slot per
	// backend selector (auto, soa, bitvector) — each keyed on the ensemble
	// snapshot it was compiled from.
	compiled [predict.BackendBitvector + 1]atomic.Pointer[compiledEngine]
}

// compiledEngine pairs an engine with the Trees slice it was built from, so
// the cache invalidates when training code appends or truncates trees.
type compiledEngine struct {
	engine *predict.Engine
	trees  []*tree.Tree
}

// matches reports whether the cached engine still describes the ensemble.
// Trees are never mutated once appended (the trainer grows a tree fully
// before adding it), so slice length plus boundary identity suffices.
func (c *compiledEngine) matches(trees []*tree.Tree) bool {
	if len(c.trees) != len(trees) {
		return false
	}
	return len(trees) == 0 ||
		(c.trees[0] == trees[0] && c.trees[len(trees)-1] == trees[len(trees)-1])
}

// Compiled returns the model's compiled inference engine with automatic
// backend selection, building it on first use and rebuilding if the
// ensemble changed since.
func (m *Model) Compiled() (*predict.Engine, error) {
	return m.CompiledBackend(predict.BackendAuto)
}

// CompiledBackend returns the model's compiled inference engine for a
// specific backend selector. Each selector gets its own cache slot, so a
// serving process can hold, say, the auto-picked engine and a forced-SoA
// reference engine side by side without recompiling on every call.
func (m *Model) CompiledBackend(backend predict.Backend) (*predict.Engine, error) {
	if int(backend) >= len(m.compiled) {
		return nil, fmt.Errorf("core: unknown predict backend %d", backend)
	}
	slot := &m.compiled[backend]
	if c := slot.Load(); c != nil && c.matches(m.Trees) {
		return c.engine, nil
	}
	eng, err := predict.CompileBackend(m.Trees, m.BaseScore, backend)
	if err != nil {
		return nil, err
	}
	// Snapshot by copy: aliasing m.Trees' backing array would let in-place
	// tree replacement mutate the snapshot and defeat the staleness check.
	slot.Store(&compiledEngine{engine: eng, trees: append([]*tree.Tree(nil), m.Trees...)})
	return eng, nil
}

// Predict returns the raw model output for one instance (a logit for
// logistic models, the regression value for squared loss).
func (m *Model) Predict(in dataset.Instance) float64 {
	s := m.BaseScore
	for _, t := range m.Trees {
		s += t.Predict(in)
	}
	return s
}

// PredictProb returns the positive-class probability for logistic models.
func (m *Model) PredictProb(in dataset.Instance) float64 {
	return loss.Sigmoid(m.Predict(in))
}

// PredictBatch scores every row of a dataset through the compiled inference
// engine (bit-identical to the interpreted walk, but without per-node binary
// searches and parallel over rows). The engine is compiled on first use and
// cached on the model.
func (m *Model) PredictBatch(d *dataset.Dataset) []float64 {
	eng, err := m.Compiled()
	if err != nil {
		// A model that fails tree validation cannot come from Train or Load;
		// fall back to the interpreted walk rather than fail scoring.
		return m.PredictBatchInterpreted(d)
	}
	return eng.PredictBatch(d)
}

// PredictBatchInterpreted scores every row with the interpreted per-node
// tree walk — the reference semantics the compiled engine is differentially
// tested against, and the baseline of the serving benchmarks.
func (m *Model) PredictBatchInterpreted(d *dataset.Dataset) []float64 {
	out := make([]float64, d.NumRows())
	for i := range out {
		out[i] = m.Predict(d.Row(i))
	}
	return out
}

// Evaluate computes the mean training loss and, for logistic models, the
// classification error on a dataset.
func (m *Model) Evaluate(d *dataset.Dataset) (meanLoss, errRate float64) {
	preds := m.PredictBatch(d)
	f := loss.New(m.Loss)
	meanLoss = loss.MeanLoss(f, d.Labels, preds)
	if m.Loss == loss.Logistic {
		errRate = loss.ErrorRate(d.Labels, preds)
	} else {
		errRate = loss.RMSE(d.Labels, preds)
	}
	return
}

// modelWire is the serialized form of a Model.
type modelWire struct {
	Version   int
	Loss      loss.Kind
	BaseScore float64
	MaxDepths []int
	Nodes     [][]tree.Node
}

const modelVersion = 1

// Save writes the model in a self-describing binary format.
func (m *Model) Save(w io.Writer) error {
	mw := modelWire{Version: modelVersion, Loss: m.Loss, BaseScore: m.BaseScore}
	for _, t := range m.Trees {
		mw.MaxDepths = append(mw.MaxDepths, t.MaxDepth)
		mw.Nodes = append(mw.Nodes, t.Nodes)
	}
	return gob.NewEncoder(w).Encode(mw)
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var mw modelWire
	if err := gob.NewDecoder(r).Decode(&mw); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if mw.Version != modelVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", mw.Version)
	}
	m := &Model{Loss: mw.Loss, BaseScore: mw.BaseScore}
	for i, d := range mw.MaxDepths {
		t := &tree.Tree{MaxDepth: d, Nodes: mw.Nodes[i]}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("core: tree %d invalid: %w", i, err)
		}
		m.Trees = append(m.Trees, t)
	}
	return m, nil
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model from a file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
