package core

import (
	"math"

	"dimboost/internal/histogram"
)

// Split describes the best split of one tree node, in the paper's terms a
// (split feature, split value, objective gain) triple plus the child
// gradient sums needed to compute child weights and node statistics without
// rebuilding histograms.
type Split struct {
	// Found is false when no split improves the objective.
	Found bool
	// Feature is the global feature id.
	Feature int32
	// Value is the threshold: x <= Value goes left.
	Value float64
	// Gain is the objective gain (already includes the −γ penalty).
	Gain float64
	// LeftG/LeftH and RightG/RightH are the child gradient sums.
	LeftG, LeftH   float64
	RightG, RightH float64
}

// gainTol is the relative tolerance under which two gains are considered
// tied. Histogram sums are float64 accumulations whose association order
// varies across the parallel builder, worker partitioning, and the dense/
// sparse construction; treating near-equal gains as ties keeps the chosen
// split identical across all of them.
const gainTol = 1e-9

// Better reports whether s should replace t as the best split. Gains equal
// within a relative tolerance tie-break toward the lower feature id and then
// the lower threshold, keeping the choice deterministic across workers and
// aggregation orders.
func (s Split) Better(t Split) bool {
	if !s.Found {
		return false
	}
	if !t.Found {
		return true
	}
	diff := s.Gain - t.Gain
	tol := gainTol * (1 + math.Max(math.Abs(s.Gain), math.Abs(t.Gain)))
	if diff > tol {
		return true
	}
	if diff < -tol {
		return false
	}
	if s.Feature != t.Feature {
		return s.Feature < t.Feature
	}
	return s.Value < t.Value
}

// gainTerm is (ΣG)²/(ΣH+λ), the objective contribution of one child.
func gainTerm(g, h, lambda float64) float64 {
	return g * g / (h + lambda)
}

// LeafWeight returns the optimal leaf weight ω* = −ΣG/(ΣH+λ).
func LeafWeight(g, h, lambda float64) float64 {
	return -g / (h + lambda)
}

// FindSplit scans every sampled feature of the histogram for the maximal-
// gain split (Algorithm 1, lines 10–17). totalG/totalH are the node's
// gradient sums.
func FindSplit(h *histogram.Histogram, totalG, totalH, lambda, gamma, minChildHessian float64) Split {
	return FindSplitRange(h, 0, h.Layout.NumFeatures(), totalG, totalH, lambda, gamma, minChildHessian)
}

// FindSplitRange restricts the scan to sampled positions [pLo, pHi). The
// parameter-server shards use this to run Algorithm 1 on their own feature
// range only (two-phase split finding, §6.3).
func FindSplitRange(h *histogram.Histogram, pLo, pHi int, totalG, totalH, lambda, gamma, minChildHessian float64) Split {
	l := h.Layout
	parent := gainTerm(totalG, totalH, lambda)
	best := Split{}
	for p := pLo; p < pHi; p++ {
		cands := l.Cands[p]
		lo, hi := l.BucketRange(p)
		nb := hi - lo
		var gl, hl float64
		// Splitting after the last bucket sends everything left; skip it.
		for k := 0; k < nb-1; k++ {
			gl += h.G[lo+k]
			hl += h.H[lo+k]
			gr := totalG - gl
			hr := totalH - hl
			if hl < minChildHessian || hr < minChildHessian {
				continue
			}
			gain := 0.5*(gainTerm(gl, hl, lambda)+gainTerm(gr, hr, lambda)-parent) - gamma
			if gain <= 0 {
				continue
			}
			cand := Split{
				Found:   true,
				Feature: l.Features[p],
				Value:   cands.SplitValue(k),
				Gain:    gain,
				LeftG:   gl, LeftH: hl,
				RightG: gr, RightH: hr,
			}
			if cand.Better(best) {
				best = cand
			}
		}
	}
	return best
}

// BestOf folds a set of per-shard splits into the global best, applying the
// same deterministic tie-break as FindSplitRange. This is the worker-side
// phase of two-phase split finding.
func BestOf(splits ...Split) Split {
	best := Split{}
	for _, s := range splits {
		if s.Better(best) {
			best = s
		}
	}
	return best
}
