package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"dimboost/internal/dataset"
	"dimboost/internal/loss"
)

// sameStructure compares two models node by node ignoring the float Gain
// field, which differs at the 1e-12 level across float association orders.
func sameStructure(t *testing.T, a, b *Model) bool {
	t.Helper()
	if len(a.Trees) != len(b.Trees) {
		return false
	}
	for ti := range a.Trees {
		if len(a.Trees[ti].Nodes) != len(b.Trees[ti].Nodes) {
			return false
		}
		for ni := range a.Trees[ti].Nodes {
			x, y := a.Trees[ti].Nodes[ni], b.Trees[ti].Nodes[ni]
			if x.Used != y.Used || x.Leaf != y.Leaf || x.Feature != y.Feature || x.Value != y.Value {
				t.Logf("tree %d node %d: %+v vs %+v", ti, ni, x, y)
				return false
			}
			if math.Abs(x.Weight-y.Weight) > 1e-9 {
				t.Logf("tree %d node %d weight: %v vs %v", ti, ni, x.Weight, y.Weight)
				return false
			}
		}
	}
	return true
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumTrees = 8
	cfg.MaxDepth = 4
	cfg.NumCandidates = 12
	cfg.Parallelism = 1
	cfg.BatchSize = 0
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumTrees = 0 },
		func(c *Config) { c.MaxDepth = 0 },
		func(c *Config) { c.MaxDepth = 30 },
		func(c *Config) { c.NumCandidates = 0 },
		func(c *Config) { c.LearningRate = 0 },
		func(c *Config) { c.LearningRate = 1.5 },
		func(c *Config) { c.Lambda = -1 },
		func(c *Config) { c.Gamma = -0.1 },
		func(c *Config) { c.FeatureSampleRatio = 0 },
		func(c *Config) { c.FeatureSampleRatio = 2 },
		func(c *Config) { c.SketchEps = 1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should be invalid", i)
		}
	}
}

func TestTrainReducesLossMonotonically(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 600, NumFeatures: 200, AvgNNZ: 15, Seed: 21, Zipf: 1.2, NoiseStd: 0.2})
	cfg := smallConfig()
	tr, err := NewTrainer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	tr.OnTree = func(e TreeEvent) { losses = append(losses, e.TrainLoss) }
	model, err := tr.Train()
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Trees) != cfg.NumTrees {
		t.Fatalf("trees = %d, want %d", len(model.Trees), cfg.NumTrees)
	}
	if len(losses) != cfg.NumTrees {
		t.Fatalf("events = %d", len(losses))
	}
	for i := 1; i < len(losses); i++ {
		if losses[i] > losses[i-1]+1e-9 {
			t.Fatalf("train loss increased at tree %d: %v -> %v", i, losses[i-1], losses[i])
		}
	}
	if losses[len(losses)-1] >= math.Ln2 {
		t.Fatalf("final loss %v no better than trivial ln2", losses[len(losses)-1])
	}
	for _, tn := range model.Trees {
		if err := tn.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTrainOverfitsTinyData(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 60, NumFeatures: 30, AvgNNZ: 8, Seed: 5, NoiseStd: 0})
	cfg := smallConfig()
	cfg.NumTrees = 40
	cfg.LearningRate = 0.5
	cfg.MaxDepth = 5
	model, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, errRate := model.Evaluate(d)
	if errRate > 0.05 {
		t.Fatalf("train error %v, expected near-perfect fit", errRate)
	}
}

func TestTrainBeatsChanceOnHeldOut(t *testing.T) {
	train, test := dataset.GenerateTrainTest(dataset.SyntheticConfig{NumRows: 2000, NumFeatures: 300, AvgNNZ: 20, Seed: 33, Zipf: 1.2, NoiseStd: 0.3})
	cfg := smallConfig()
	cfg.NumTrees = 15
	model, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	preds := model.PredictBatch(test)
	errRate := loss.ErrorRate(test.Labels, preds)
	if errRate > 0.45 {
		t.Fatalf("held-out error %v too close to chance", errRate)
	}
	auc, err := loss.AUC(test.Labels, preds)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.63 {
		t.Fatalf("held-out AUC %v too low", auc)
	}
}

func TestAblationsMatchDefault(t *testing.T) {
	// The sparsity-aware build, the node index, and the parallel builder
	// are pure optimizations: with a fixed seed every variant must produce
	// the identical model.
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 300, NumFeatures: 60, AvgNNZ: 10, Seed: 8, Zipf: 1.2})
	base := smallConfig()
	base.NumTrees = 4

	ref, err := Train(d, base)
	if err != nil {
		t.Fatal(err)
	}

	variants := map[string]func(*Config){
		"dense-build":   func(c *Config) { c.DenseBuild = true },
		"no-node-index": func(c *Config) { c.NoNodeIndex = true },
		"both":          func(c *Config) { c.DenseBuild = true; c.NoNodeIndex = true },
	}
	for name, mutate := range variants {
		cfg := base
		mutate(&cfg)
		m, err := Train(d, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sameStructure(t, ref, m) {
			t.Fatalf("%s: model differs from reference", name)
		}
	}
}

func TestParallelBuildGivesSameSplits(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 500, NumFeatures: 80, AvgNNZ: 12, Seed: 13, Zipf: 1.3})
	base := smallConfig()
	base.NumTrees = 3
	ref, err := Train(d, base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallelism = 8
	par.BatchSize = 64
	m, err := Train(d, par)
	if err != nil {
		t.Fatal(err)
	}
	// float merge order differs, so compare structure, not bit-exact gains
	if !sameStructure(t, ref, m) {
		t.Fatal("parallel build changed the model structure")
	}
}

func TestFeatureSampling(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 300, NumFeatures: 100, AvgNNZ: 10, Seed: 17, Zipf: 1.2})
	cfg := smallConfig()
	cfg.FeatureSampleRatio = 0.3
	cfg.NumTrees = 5
	tr, err := NewTrainer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	feats := tr.SampleFeatures()
	if len(feats) != 30 {
		t.Fatalf("sampled %d features, want 30", len(feats))
	}
	for i := 1; i < len(feats); i++ {
		if feats[i] <= feats[i-1] {
			t.Fatal("sampled features not sorted/unique")
		}
	}
	// a second draw differs (new rng state)
	feats2 := tr.SampleFeatures()
	if reflect.DeepEqual(feats, feats2) {
		t.Fatal("consecutive samples identical; rng not advancing")
	}
	model, err := tr.Train()
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Trees) != 5 {
		t.Fatal("training with sampling failed")
	}
}

func TestRegressionTraining(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 800, NumFeatures: 100, AvgNNZ: 12, Seed: 19, Regression: true, NoiseStd: 0.1, Zipf: 1.2})
	train, test := d.Split(0.9)
	cfg := smallConfig()
	cfg.Loss = loss.Squared
	cfg.NumTrees = 20
	model, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseRMSE := loss.RMSE(test.Labels, make([]float64, test.NumRows()))
	gotRMSE := loss.RMSE(test.Labels, model.PredictBatch(test))
	if gotRMSE >= baseRMSE {
		t.Fatalf("RMSE %v not better than predict-zero %v", gotRMSE, baseRMSE)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 200, NumFeatures: 50, AvgNNZ: 8, Seed: 23})
	cfg := smallConfig()
	cfg.NumTrees = 3
	model, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Loss != model.Loss || len(back.Trees) != len(model.Trees) {
		t.Fatal("round trip lost structure")
	}
	for i := 0; i < d.NumRows(); i++ {
		in := d.Row(i)
		if model.Predict(in) != back.Predict(in) {
			t.Fatalf("prediction differs for row %d", i)
		}
	}
}

func TestModelLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 100, NumFeatures: 20, AvgNNZ: 5, Seed: 29})
	cfg := smallConfig()
	cfg.NumTrees = 2
	model, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.bin"
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Predict(d.Row(0)) != model.Predict(d.Row(0)) {
		t.Fatal("file round trip changed predictions")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestPredictProbRange(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 150, NumFeatures: 40, AvgNNZ: 6, Seed: 31})
	model, err := Train(d, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.NumRows(); i++ {
		p := model.PredictProb(d.Row(i))
		if p < 0 || p > 1 {
			t.Fatalf("probability %v outside [0,1]", p)
		}
	}
}

func TestPhaseTimesAccumulate(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 300, NumFeatures: 50, AvgNNZ: 8, Seed: 37})
	tr, err := NewTrainer(d, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Train(); err != nil {
		t.Fatal(err)
	}
	pt := tr.Times
	if pt.Sketch <= 0 || pt.Gradients <= 0 || pt.BuildHist <= 0 || pt.FindSplit <= 0 {
		t.Fatalf("phase times not accumulated: %+v", pt)
	}
	if pt.Total() < pt.BuildHist {
		t.Fatal("Total less than a component")
	}
}

func TestDeterministicTraining(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 250, NumFeatures: 60, AvgNNZ: 9, Seed: 41, Zipf: 1.2})
	cfg := smallConfig()
	cfg.NumTrees = 3
	a, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Trees, b.Trees) {
		t.Fatal("training is not deterministic for a fixed seed")
	}
}

func TestTrainDepthOneIsStump(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 100, NumFeatures: 20, AvgNNZ: 5, Seed: 43})
	cfg := smallConfig()
	cfg.MaxDepth = 1
	cfg.NumTrees = 2
	model, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range model.Trees {
		if len(tn.Nodes) != 1 || !tn.Nodes[0].Leaf {
			t.Fatal("depth-1 tree must be a single leaf")
		}
	}
}
