package core

import (
	"fmt"
	"math/rand"

	"dimboost/internal/dataset"
	"dimboost/internal/ooc"
	"dimboost/internal/parallel"
	"dimboost/internal/predict"
)

// NewTrainerFromSource prepares a trainer over a disk-resident dataset: the
// out-of-core mode. Every training pass streams row chunks through the
// source's bounded cache instead of touching a resident Dataset, and the
// per-tree binned mirror spills to disk (ooc.SpilledBinned). The chunk grids
// and ordered reductions are identical to the in-memory path, so the trained
// model is Float64bits-identical to NewTrainer on the same data — at any
// parallelism and any budget admitted by ooc.Open.
//
// Ablation modes that are intrinsically resident-data features are rejected:
// instance sampling (per-tree engine scoring of the full dataset would spill
// nothing), NoNodeIndex (full-scan row recovery), NoBinning (float-path
// splitting reads raw values per layer), and DenseBuild.
func NewTrainerFromSource(src *ooc.Source, cfg Config) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch {
	case cfg.InstanceSampleRatio < 1:
		return nil, fmt.Errorf("core: out-of-core training does not support InstanceSampleRatio < 1")
	case cfg.NoNodeIndex:
		return nil, fmt.Errorf("core: out-of-core training does not support the NoNodeIndex ablation")
	case cfg.NoBinning:
		return nil, fmt.Errorf("core: out-of-core training does not support the NoBinning ablation")
	case cfg.DenseBuild:
		return nil, fmt.Errorf("core: out-of-core training does not support the DenseBuild ablation")
	}
	return &Trainer{
		cfg:    cfg,
		src:    src,
		labels: src.Labels(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		pool:   parallel.New(cfg.ResolvedParallelism()),
	}, nil
}

// TrainOutOfCore trains from a chunked binary dataset file under
// cfg.MemoryBudget, opening and closing the source around one Train call.
// With a zero budget the source caches are effectively unbounded but the
// data path is still the streaming one.
func TrainOutOfCore(path string, cfg Config) (*Model, error) {
	src, err := ooc.Open(path, ooc.Options{
		Budget:      cfg.MemoryBudget,
		Parallelism: cfg.ResolvedParallelism(),
	})
	if err != nil {
		return nil, err
	}
	defer src.Close()
	tr, err := NewTrainerFromSource(src, cfg)
	if err != nil {
		return nil, err
	}
	return tr.Train()
}

// numRows returns the training row count of either data path.
func (tr *Trainer) numRows() int {
	if tr.src != nil {
		return tr.src.NumRows()
	}
	return tr.data.NumRows()
}

// numFeatures returns the feature dimensionality of either data path.
func (tr *Trainer) numFeatures() int {
	if tr.src != nil {
		return tr.src.NumFeatures()
	}
	return tr.data.NumFeatures
}

// avgNNZ returns the mean nonzeros per row of either data path.
func (tr *Trainer) avgNNZ() float64 {
	if tr.src != nil {
		n := tr.src.NumRows()
		if n == 0 {
			return 0
		}
		return float64(tr.src.NNZ()) / float64(n)
	}
	return tr.data.AvgNNZ()
}

// srcErr surfaces the out-of-core source's sticky I/O error, if any. The
// training loop checks it at phase boundaries: streaming passes that hit an
// I/O failure skip work and record here rather than panicking inside pool
// workers, and the loop aborts instead of training on partial data.
func (tr *Trainer) srcErr() error {
	if tr.src == nil {
		return nil
	}
	return tr.src.Err()
}

// scoreTrainInto scores every training row into out. In-memory this is one
// batch call; out-of-core it streams chunks through the pool with the engine
// in single-worker mode — prediction is per-row pure, so the chunked scores
// are identical to the batch ones.
func (tr *Trainer) scoreTrainInto(eng *predict.Engine, out []float64) error {
	if tr.src == nil {
		eng.PredictBatchInto(tr.data, out)
		return nil
	}
	eng.Workers = 1
	return tr.src.ForEachChunk(tr.pool, func(_, lo, hi int, d *dataset.Dataset) {
		eng.PredictBatchInto(d, out[lo:hi])
	})
}
