package core

import (
	"math"
	"testing"

	"dimboost/internal/dataset"
	"dimboost/internal/loss"
	"dimboost/internal/predict"
	"dimboost/internal/tree"
)

func leafTree(depth int, w float64) *tree.Tree {
	t := tree.New(depth)
	t.SetLeaf(0, w)
	return t
}

// TestCompiledCache verifies that Model.Compiled caches the engine across
// calls and rebuilds it when the ensemble changes — trees appended (boosting
// continues), truncated (early stopping), or swapped in place.
func TestCompiledCache(t *testing.T) {
	m := &Model{Loss: loss.Squared, BaseScore: 1}
	m.Trees = append(m.Trees, leafTree(2, 10), leafTree(2, 20))

	e1, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("unchanged ensemble recompiled")
	}

	m.Trees = append(m.Trees, leafTree(2, 40))
	e3, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if e3 == e1 {
		t.Fatal("appended tree did not invalidate the cache")
	}
	if got := e3.Predict(dataset.Instance{}); got != 71 {
		t.Fatalf("after append: got %v, want 71", got)
	}

	m.Trees = m.Trees[:1] // early-stopping truncation
	e4, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if got := e4.Predict(dataset.Instance{}); got != 11 {
		t.Fatalf("after truncation: got %v, want 11", got)
	}

	m.Trees[0] = leafTree(2, 100) // boundary tree replaced in place
	e5, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if got := e5.Predict(dataset.Instance{}); got != 101 {
		t.Fatalf("after swap: got %v, want 101", got)
	}
}

// TestCompiledBackendCache: each backend selector owns an independent cache
// slot — forcing one backend neither evicts nor returns another's engine —
// and ensemble changes invalidate every slot.
func TestCompiledBackendCache(t *testing.T) {
	m := &Model{Loss: loss.Squared, BaseScore: 1}
	m.Trees = append(m.Trees, leafTree(2, 10))

	auto, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	soa, err := m.CompiledBackend(predict.BackendSoA)
	if err != nil {
		t.Fatal(err)
	}
	bv, err := m.CompiledBackend(predict.BackendBitvector)
	if err != nil {
		t.Fatal(err)
	}
	if soa.Backend() != predict.BackendSoA || bv.Backend() != predict.BackendBitvector {
		t.Fatalf("forced backends resolved to %v and %v", soa.Backend(), bv.Backend())
	}
	if auto == soa || auto == bv || soa == bv {
		t.Fatal("backend slots shared an engine")
	}
	if again, _ := m.CompiledBackend(predict.BackendSoA); again != soa {
		t.Fatal("forced-SoA engine recompiled on an unchanged ensemble")
	}
	if again, _ := m.Compiled(); again != auto {
		t.Fatal("auto engine evicted by forced-backend compiles")
	}

	m.Trees = append(m.Trees, leafTree(2, 5))
	for _, b := range []predict.Backend{predict.BackendAuto, predict.BackendSoA, predict.BackendBitvector} {
		eng, err := m.CompiledBackend(b)
		if err != nil {
			t.Fatal(err)
		}
		if eng == auto || eng == soa || eng == bv {
			t.Fatalf("%v: appended tree did not invalidate the slot", b)
		}
		if got := eng.Predict(dataset.Instance{}); got != 16 {
			t.Fatalf("%v: got %v, want 16", b, got)
		}
	}

	if _, err := m.CompiledBackend(predict.Backend(9)); err == nil {
		t.Fatal("out-of-range backend accepted")
	}
}

// TestPredictBatchUsesEngine: the default batch path and the interpreted
// reference agree bit-for-bit on a trained model.
func TestPredictBatchUsesEngine(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{
		NumRows: 400, NumFeatures: 800, AvgNNZ: 25, Seed: 12,
	})
	cfg := DefaultConfig()
	cfg.NumTrees = 5
	cfg.MaxDepth = 4
	m, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast := m.PredictBatch(d)
	slow := m.PredictBatchInterpreted(d)
	for i := range fast {
		if math.Float64bits(fast[i]) != math.Float64bits(slow[i]) {
			t.Fatalf("row %d: engine %v != interpreted %v", i, fast[i], slow[i])
		}
	}
}
