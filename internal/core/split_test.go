package core

import (
	"math"
	"testing"

	"dimboost/internal/dataset"
	"dimboost/internal/histogram"
	"dimboost/internal/sketch"
)

func fixture(t testing.TB, rows, features, nnz int, seed int64) (*dataset.Dataset, *histogram.Layout, []float64, []float64) {
	t.Helper()
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: rows, NumFeatures: features, AvgNNZ: nnz, Seed: seed, Zipf: 1.2})
	set := sketch.NewSet(features, 0.02)
	set.AddDataset(d)
	layout, err := histogram.NewLayout(histogram.AllFeatures(features), set.Candidates(12), features)
	if err != nil {
		t.Fatal(err)
	}
	grad := make([]float64, rows)
	hess := make([]float64, rows)
	for i := range grad {
		grad[i] = math.Sin(float64(i)) // deterministic mixed-sign gradients
		hess[i] = 0.25 + 0.1*float64(i%5)
	}
	return d, layout, grad, hess
}

// bruteForceSplit enumerates every feature and candidate cut directly on the
// data, bypassing histograms, and returns the best split.
func bruteForceSplit(d *dataset.Dataset, l *histogram.Layout, rows []int32, grad, hess []float64, lambda, gamma, minH float64) Split {
	var totalG, totalH float64
	for _, r := range rows {
		totalG += grad[r]
		totalH += hess[r]
	}
	parent := totalG * totalG / (totalH + lambda)
	best := Split{}
	for p := 0; p < l.NumFeatures(); p++ {
		f := int(l.Features[p])
		c := l.Cands[p]
		for k := 0; k < c.NumBuckets()-1; k++ {
			cut := c.SplitValue(k)
			var gl, hl float64
			for _, r := range rows {
				if float64(d.Row(int(r)).Feature(f)) <= cut {
					gl += grad[r]
					hl += hess[r]
				}
			}
			gr, hr := totalG-gl, totalH-hl
			if hl < minH || hr < minH {
				continue
			}
			gain := 0.5*(gl*gl/(hl+lambda)+gr*gr/(hr+lambda)-parent) - gamma
			if gain <= 0 {
				continue
			}
			cand := Split{Found: true, Feature: int32(f), Value: cut, Gain: gain, LeftG: gl, LeftH: hl, RightG: gr, RightH: hr}
			if cand.Better(best) {
				best = cand
			}
		}
	}
	return best
}

func TestFindSplitMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		d, layout, grad, hess := fixture(t, 120, 15, 5, seed)
		rows := make([]int32, d.NumRows())
		for i := range rows {
			rows[i] = int32(i)
		}
		h := histogram.New(layout)
		histogram.BuildSparse(h, d, rows, grad, hess)
		var tg, th float64
		for _, r := range rows {
			tg += grad[r]
			th += hess[r]
		}
		got := FindSplit(h, tg, th, 1.0, 0.0, 1e-4)
		want := bruteForceSplit(d, layout, rows, grad, hess, 1.0, 0.0, 1e-4)
		if got.Found != want.Found {
			t.Fatalf("seed %d: Found %v vs %v", seed, got.Found, want.Found)
		}
		if !got.Found {
			continue
		}
		if got.Feature != want.Feature || got.Value != want.Value {
			t.Fatalf("seed %d: split (%d,%v) vs brute (%d,%v)", seed, got.Feature, got.Value, want.Feature, want.Value)
		}
		if math.Abs(got.Gain-want.Gain) > 1e-9 {
			t.Fatalf("seed %d: gain %v vs %v", seed, got.Gain, want.Gain)
		}
		if math.Abs(got.LeftG-want.LeftG) > 1e-9 || math.Abs(got.LeftH-want.LeftH) > 1e-9 {
			t.Fatalf("seed %d: child sums differ", seed)
		}
	}
}

func TestFindSplitRangeUnion(t *testing.T) {
	// two-phase invariant: the best of per-range splits equals the global
	// best (§6.3)
	d, layout, grad, hess := fixture(t, 150, 20, 6, 9)
	rows := make([]int32, d.NumRows())
	for i := range rows {
		rows[i] = int32(i)
	}
	h := histogram.New(layout)
	histogram.BuildSparse(h, d, rows, grad, hess)
	var tg, th float64
	for _, r := range rows {
		tg += grad[r]
		th += hess[r]
	}
	global := FindSplit(h, tg, th, 1.0, 0.0, 1e-4)

	for _, parts := range []int{2, 3, 5, 7, 20} {
		var shards []Split
		per := (20 + parts - 1) / parts
		for lo := 0; lo < 20; lo += per {
			hi := lo + per
			if hi > 20 {
				hi = 20
			}
			shards = append(shards, FindSplitRange(h, lo, hi, tg, th, 1.0, 0.0, 1e-4))
		}
		merged := BestOf(shards...)
		if merged != global {
			t.Fatalf("parts=%d: merged %+v vs global %+v", parts, merged, global)
		}
	}
}

func TestGammaSuppressesWeakSplits(t *testing.T) {
	d, layout, grad, hess := fixture(t, 100, 10, 4, 3)
	rows := make([]int32, d.NumRows())
	for i := range rows {
		rows[i] = int32(i)
	}
	h := histogram.New(layout)
	histogram.BuildSparse(h, d, rows, grad, hess)
	var tg, th float64
	for _, r := range rows {
		tg += grad[r]
		th += hess[r]
	}
	free := FindSplit(h, tg, th, 1.0, 0.0, 1e-4)
	if !free.Found {
		t.Skip("no split found even ungated")
	}
	gated := FindSplit(h, tg, th, 1.0, free.Gain+1, 1e-4)
	if gated.Found {
		t.Fatalf("gamma above best gain must suppress splits, got %+v", gated)
	}
}

func TestMinChildHessianGate(t *testing.T) {
	d, layout, grad, hess := fixture(t, 80, 8, 3, 4)
	rows := make([]int32, d.NumRows())
	for i := range rows {
		rows[i] = int32(i)
	}
	h := histogram.New(layout)
	histogram.BuildSparse(h, d, rows, grad, hess)
	var tg, th float64
	for _, r := range rows {
		tg += grad[r]
		th += hess[r]
	}
	// an impossible min-child requirement: more than the whole node
	s := FindSplit(h, tg, th, 1.0, 0.0, th+1)
	if s.Found {
		t.Fatal("min child hessian above node total must block all splits")
	}
}

func TestBetterTieBreaks(t *testing.T) {
	a := Split{Found: true, Feature: 3, Value: 1, Gain: 5}
	b := Split{Found: true, Feature: 1, Value: 9, Gain: 5}
	if !b.Better(a) || a.Better(b) {
		t.Fatal("equal gain should prefer lower feature id")
	}
	c := Split{Found: true, Feature: 1, Value: 2, Gain: 5}
	if !c.Better(b) {
		t.Fatal("equal gain+feature should prefer lower value")
	}
	none := Split{}
	if none.Better(a) {
		t.Fatal("not-found is never better")
	}
	if !a.Better(none) {
		t.Fatal("found beats not-found")
	}
	if BestOf() != (Split{}) {
		t.Fatal("BestOf() should be zero split")
	}
	if BestOf(none, a, b, c) != c {
		t.Fatal("BestOf picked wrong split")
	}
}

func TestLeafWeight(t *testing.T) {
	if got := LeafWeight(4, 1, 1); got != -2 {
		t.Fatalf("LeafWeight(4,1,1) = %v, want -2", got)
	}
	if got := LeafWeight(0, 0, 1); got != 0 {
		t.Fatalf("LeafWeight(0,0,1) = %v, want 0", got)
	}
}
