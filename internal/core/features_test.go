package core

import (
	"math"
	"strings"
	"testing"

	"dimboost/internal/dataset"
	"dimboost/internal/loss"
)

func TestHistSubtractionMatchesNormal(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 500, NumFeatures: 80, AvgNNZ: 12, Seed: 101, Zipf: 1.2})
	cfg := smallConfig()
	cfg.NumTrees = 5
	cfg.MaxDepth = 5
	ref, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.HistSubtraction = true
	sub, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameStructure(t, ref, sub) {
		t.Fatal("histogram subtraction changed the model")
	}
}

// TestBinnedMatchesNoBinning is the tentpole invariant of the quantized
// pipeline: training over bin ids is bit-identical to training over float
// values, across the feature interactions that touch the split path.
func TestBinnedMatchesNoBinning(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 600, NumFeatures: 90, AvgNNZ: 12, Seed: 131, Zipf: 1.2})
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"default", func(c *Config) {}},
		{"histsub", func(c *Config) { c.HistSubtraction = true }},
		{"sampling", func(c *Config) { c.FeatureSampleRatio = 0.4; c.InstanceSampleRatio = 0.6 }},
		{"dense", func(c *Config) { c.DenseBuild = true }},
		{"no-index", func(c *Config) { c.NoNodeIndex = true }},
		{"weighted", func(c *Config) { c.WeightedCandidates = true }},
		{"parallel", func(c *Config) { c.Parallelism = 4; c.BatchSize = 64 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := smallConfig()
			cfg.NumTrees = 4
			cfg.MaxDepth = 5
			v.mut(&cfg)
			binned, err := Train(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.NoBinning = true
			float, err := Train(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !sameStructure(t, float, binned) {
				t.Fatal("binned training diverged from the float path")
			}
		})
	}
}

// TestHistSubtractionMatchesNormalNoBinning re-runs the subtraction
// equality on the float (ablation) path, so both sides of the NoBinning
// switch keep the §5 invariants.
func TestHistSubtractionMatchesNormalNoBinning(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 500, NumFeatures: 80, AvgNNZ: 12, Seed: 101, Zipf: 1.2})
	cfg := smallConfig()
	cfg.NumTrees = 5
	cfg.MaxDepth = 5
	cfg.NoBinning = true
	ref, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.HistSubtraction = true
	sub, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameStructure(t, ref, sub) {
		t.Fatal("histogram subtraction changed the model on the float path")
	}
}

func TestHistSubtractionIsFaster(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 6000, NumFeatures: 500, AvgNNZ: 40, Seed: 103, Zipf: 1.3})
	cfg := smallConfig()
	cfg.NumTrees = 3
	cfg.MaxDepth = 6

	tr1, _ := NewTrainer(d, cfg)
	if _, err := tr1.Train(); err != nil {
		t.Fatal(err)
	}
	cfg.HistSubtraction = true
	tr2, _ := NewTrainer(d, cfg)
	if _, err := tr2.Train(); err != nil {
		t.Fatal(err)
	}
	// subtraction must replace a substantial share of the child builds
	// with O(T) subtractions (counted, so the assertion is immune to
	// timer noise on a loaded machine)...
	if tr2.DerivedHists < 5 {
		t.Fatalf("only %d histograms derived by subtraction", tr2.DerivedHists)
	}
	if tr1.DerivedHists != 0 {
		t.Fatalf("subtraction off but %d derived", tr1.DerivedHists)
	}
	// ...and must never be slower than the plain build beyond timer noise
	if tr2.Times.BuildHist > tr1.Times.BuildHist*13/10 {
		t.Fatalf("subtraction build time %v vs normal %v — slower", tr2.Times.BuildHist, tr1.Times.BuildHist)
	}
}

func TestInstanceSampling(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 1500, NumFeatures: 200, AvgNNZ: 15, Seed: 105, Zipf: 1.2, NoiseStd: 0.2})
	train, test := d.Split(0.9)
	cfg := smallConfig()
	cfg.NumTrees = 12
	cfg.InstanceSampleRatio = 0.5
	model, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Trees) != 12 {
		t.Fatalf("%d trees", len(model.Trees))
	}
	preds := model.PredictBatch(test)
	auc, err := loss.AUC(test.Labels, preds)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.55 {
		t.Fatalf("subsampled model AUC %v — did not learn", auc)
	}
}

func TestInstanceSamplingRejectsNoIndexAblation(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 50, NumFeatures: 20, AvgNNZ: 5, Seed: 107})
	cfg := smallConfig()
	cfg.InstanceSampleRatio = 0.5
	cfg.NoNodeIndex = true
	if _, err := NewTrainer(d, cfg); err == nil {
		t.Fatal("expected error for sampling + NoNodeIndex")
	}
}

func TestEarlyStopping(t *testing.T) {
	// tiny training set + heavy noise: validation loss starts rising early
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 300, NumFeatures: 100, AvgNNZ: 10, Seed: 109, NoiseStd: 1.5, Zipf: 1.2})
	train, val := d.Split(0.6)
	cfg := smallConfig()
	cfg.NumTrees = 60
	cfg.LearningRate = 0.5
	cfg.MaxDepth = 6
	cfg.EarlyStoppingRounds = 5
	tr, err := NewTrainer(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.Validation = val
	model, err := tr.Train()
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Trees) >= 60 {
		t.Fatalf("early stopping never triggered (%d trees)", len(model.Trees))
	}
	if math.IsInf(tr.BestValidationLoss, 1) {
		t.Fatal("best validation loss not recorded")
	}
	// truncated model must actually achieve the recorded loss
	preds := model.PredictBatch(val)
	got := loss.MeanLoss(loss.New(cfg.Loss), val.Labels, preds)
	if math.Abs(got-tr.BestValidationLoss) > 1e-9 {
		t.Fatalf("truncated model loss %v != recorded best %v", got, tr.BestValidationLoss)
	}
}

func TestWarmStart(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 800, NumFeatures: 150, AvgNNZ: 12, Seed: 111, Zipf: 1.2, NoiseStd: 0.2})
	cfg := smallConfig()
	cfg.NumTrees = 5
	first, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	firstLoss, _ := first.Evaluate(d)

	tr, err := NewTrainer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.Init = first
	combined, err := tr.Train()
	if err != nil {
		t.Fatal(err)
	}
	if len(combined.Trees) != 10 {
		t.Fatalf("warm start produced %d trees, want 10", len(combined.Trees))
	}
	combinedLoss, _ := combined.Evaluate(d)
	if combinedLoss >= firstLoss {
		t.Fatalf("continued training did not reduce loss: %v -> %v", firstLoss, combinedLoss)
	}
	// warm start must match training 10 trees in one go... not exactly
	// (feature sampling rng differs), but with σ=1 and everything
	// deterministic the continued run equals the one-shot run
	oneshot := cfg
	oneshot.NumTrees = 10
	ref, err := Train(d, oneshot)
	if err != nil {
		t.Fatal(err)
	}
	if !sameStructure(t, ref, combined) {
		t.Fatal("warm start diverged from one-shot training")
	}
}

func TestWarmStartLossMismatch(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 100, NumFeatures: 30, AvgNNZ: 5, Seed: 113})
	cfg := smallConfig()
	cfg.NumTrees = 2
	m, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Loss = loss.Squared
	tr, err := NewTrainer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.Init = m
	if _, err := tr.Train(); err == nil {
		t.Fatal("expected loss mismatch error")
	}
}

func TestImportanceAndDump(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 500, NumFeatures: 100, AvgNNZ: 12, Seed: 115, Zipf: 1.2})
	cfg := smallConfig()
	cfg.NumTrees = 5
	model, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	imp := model.Importance()
	if len(imp) == 0 {
		t.Fatal("no feature importance")
	}
	totalSplits := 0
	for i, fi := range imp {
		if fi.Gain <= 0 || fi.Splits <= 0 {
			t.Fatalf("feature %d: gain %v splits %d", fi.Feature, fi.Gain, fi.Splits)
		}
		if i > 0 && fi.Gain > imp[i-1].Gain {
			t.Fatal("importance not sorted by gain")
		}
		totalSplits += fi.Splits
	}
	internal, leaves := model.NumNodes()
	if totalSplits != internal {
		t.Fatalf("importance counts %d splits, model has %d internal nodes", totalSplits, internal)
	}
	if leaves != internal+len(model.Trees) {
		t.Fatalf("binary-tree invariant broken: %d leaves, %d internal, %d trees", leaves, internal, len(model.Trees))
	}

	var sb strings.Builder
	if err := model.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	dump := sb.String()
	if !strings.Contains(dump, "tree 0:") || !strings.Contains(dump, "leaf=") || !strings.Contains(dump, "[f") {
		t.Fatalf("dump missing expected content:\n%s", dump[:200])
	}
}

func TestPredictLeaves(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 300, NumFeatures: 50, AvgNNZ: 8, Seed: 117, Zipf: 1.2})
	cfg := smallConfig()
	cfg.NumTrees = 4
	model, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		in := d.Row(i)
		leaves := model.PredictLeaves(in)
		if len(leaves) != 4 {
			t.Fatalf("%d leaf ids", len(leaves))
		}
		// reconstructing the prediction from leaf weights must match
		sum := model.BaseScore
		for ti, leaf := range leaves {
			nd := model.Trees[ti].Nodes[leaf]
			if !nd.Used || !nd.Leaf {
				t.Fatalf("tree %d: node %d is not a leaf", ti, leaf)
			}
			sum += nd.Weight
		}
		if math.Abs(sum-model.Predict(in)) > 1e-12 {
			t.Fatalf("leaf reconstruction %v != predict %v", sum, model.Predict(in))
		}
	}
}

func TestWeightedCandidatesTrain(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 1200, NumFeatures: 150, AvgNNZ: 12, Seed: 119, Zipf: 1.2, NoiseStd: 0.2})
	train, test := d.Split(0.9)
	cfg := smallConfig()
	cfg.NumTrees = 10
	base, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WeightedCandidates = true
	weighted, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eb := loss.ErrorRate(test.Labels, base.PredictBatch(test))
	ew := loss.ErrorRate(test.Labels, weighted.PredictBatch(test))
	// weighted candidates must stay in the same quality ballpark
	if ew > eb+0.08 {
		t.Fatalf("weighted candidates error %.4f vs base %.4f", ew, eb)
	}
	if len(weighted.Trees) != 10 {
		t.Fatalf("%d trees", len(weighted.Trees))
	}
}
