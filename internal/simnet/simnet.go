// Package simnet evaluates communication schedules under the cost model of
// §3 (after Thakur et al.): sending a package of n bytes costs α + nβ, and
// merging received bytes costs γ per byte. It also provides the paper's
// closed-form costs of Table 1 so experiments can print model-vs-simulated
// side by side.
package simnet

import (
	"fmt"

	"dimboost/internal/comm"
)

// Params are the cost-model constants. Defaults approximate the paper's
// production cluster: 1 Gb Ethernet (β = 8 ns/byte), 100 µs per-package
// latency, and a 0.5 ns/byte merge cost.
type Params struct {
	// Alpha is the latency per package, in seconds.
	Alpha float64
	// Beta is the transfer time per byte, in seconds.
	Beta float64
	// Gamma is the merge (summation) time per byte, in seconds.
	Gamma float64
}

// GigabitEthernet returns parameters for the paper's evaluation clusters.
func GigabitEthernet() Params {
	return Params{Alpha: 100e-6, Beta: 8e-9, Gamma: 0.5e-9}
}

// Evaluate returns the completion time of a schedule. Within one round a
// node's sends are serialized onto its link (as are its receives), rounds
// are barriers, and merging is proportional to the bytes received:
//
//	roundTime = α·maxMsgs + β·max(maxSendBytes, maxRecvBytes) + γ·maxRecvBytes
//
// where the maxima run over nodes. This reproduces the structure of every
// Table 1 entry; the γ term charges the receiver's full input (the paper's
// closed forms write hγ for the output instead — with γ ≪ β the difference
// is negligible, and we report both in the Table 1 experiment).
func Evaluate(s comm.Schedule, p Params) float64 {
	var total float64
	send := map[int]int64{}
	recv := map[int]int64{}
	msgs := map[int]int64{}
	for _, round := range s {
		clear(send)
		clear(recv)
		clear(msgs)
		for _, t := range round {
			send[t.From] += t.Bytes
			recv[t.To] += t.Bytes
			msgs[t.From]++
		}
		var maxSend, maxRecv, maxMsgs int64
		for _, v := range send {
			if v > maxSend {
				maxSend = v
			}
		}
		for _, v := range recv {
			if v > maxRecv {
				maxRecv = v
			}
		}
		for _, v := range msgs {
			if v > maxMsgs {
				maxMsgs = v
			}
		}
		wire := maxSend
		if maxRecv > wire {
			wire = maxRecv
		}
		total += p.Alpha*float64(maxMsgs) + p.Beta*float64(wire) + p.Gamma*float64(maxRecv)
	}
	return total
}

// Cost prices a measured traffic profile with the point-to-point §3 model:
// α per message plus β per byte, in seconds. The cluster driver and the comm
// bench use it to convert byte/message counts into a modeled communication
// time, so wire-compression savings can be reported in seconds as well as
// bytes.
func Cost(msgs, bytes int64, p Params) float64 {
	return p.Alpha*float64(msgs) + p.Beta*float64(bytes)
}

// System identifies one of the compared GBDT systems.
type System int

// The four aggregation strategies of Table 1.
const (
	MLlib System = iota
	XGBoost
	LightGBM
	DimBoost
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case MLlib:
		return "MLlib"
	case XGBoost:
		return "XGBoost"
	case LightGBM:
		return "LightGBM"
	case DimBoost:
		return "DimBoost"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Systems lists all four in Table 1 order.
var Systems = []System{MLlib, XGBoost, LightGBM, DimBoost}

// log2Ceil returns ⌈log₂ w⌉.
func log2Ceil(w int) float64 {
	n := 0
	for (1 << n) < w {
		n++
	}
	return float64(n)
}

// isPow2 reports whether w is a power of two.
func isPow2(w int) bool { return w&(w-1) == 0 }

// PaperCost returns the Table 1 closed-form cost of aggregating an h-byte
// histogram across w workers. Per the paper's remark, LightGBM's cost
// doubles when w is not a power of two.
func PaperCost(sys System, w int, h float64, p Params) float64 {
	fw := float64(w)
	switch sys {
	case MLlib:
		return h*p.Beta*fw + p.Alpha + h*p.Gamma
	case XGBoost:
		return (h*p.Beta + p.Alpha + h*p.Gamma) * log2Ceil(w)
	case LightGBM:
		c := (fw-1)/fw*h*p.Beta + (p.Alpha+h*p.Gamma)*log2Ceil(w)
		if !isPow2(w) {
			c *= 2
		}
		return c
	case DimBoost:
		return (fw-1)/fw*h*p.Beta + (fw-1)*p.Alpha + h*p.Gamma
	default:
		panic("simnet: unknown system")
	}
}

// ScheduleFor returns the communication schedule each system uses to
// aggregate an h-byte histogram across w workers.
func ScheduleFor(sys System, w int, h int64) comm.Schedule {
	switch sys {
	case MLlib:
		return comm.ScheduleFlatReduce(w, h)
	case XGBoost:
		return comm.ScheduleBinomialReduce(w, h)
	case LightGBM:
		return comm.ScheduleReduceScatterHalving(w, h)
	case DimBoost:
		return comm.SchedulePS(w, h)
	default:
		panic("simnet: unknown system")
	}
}
