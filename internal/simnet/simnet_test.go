package simnet

import (
	"math"
	"testing"

	"dimboost/internal/comm"
)

func TestPaperCostFormulas(t *testing.T) {
	p := Params{Alpha: 1e-4, Beta: 8e-9, Gamma: 5e-10}
	h := 8e6 // 8 MB histogram
	w := 16
	// spot-check each closed form against hand computation
	if got, want := PaperCost(MLlib, w, h, p), h*p.Beta*16+p.Alpha+h*p.Gamma; got != want {
		t.Errorf("MLlib: %v vs %v", got, want)
	}
	if got, want := PaperCost(XGBoost, w, h, p), (h*p.Beta+p.Alpha+h*p.Gamma)*4; got != want {
		t.Errorf("XGBoost: %v vs %v", got, want)
	}
	if got, want := PaperCost(LightGBM, w, h, p), 15.0/16*h*p.Beta+(p.Alpha+h*p.Gamma)*4; got != want {
		t.Errorf("LightGBM: %v vs %v", got, want)
	}
	if got, want := PaperCost(DimBoost, w, h, p), 15.0/16*h*p.Beta+15*p.Alpha+h*p.Gamma; got != want {
		t.Errorf("DimBoost: %v vs %v", got, want)
	}
}

func TestLightGBMNonPow2Doubles(t *testing.T) {
	p := GigabitEthernet()
	h := 1e7
	pow2 := PaperCost(LightGBM, 16, h, p)
	// w=17 uses log2ceil=5 and doubles
	base17 := 16.0/17*h*p.Beta + (p.Alpha+h*p.Gamma)*5
	if got := PaperCost(LightGBM, 17, h, p); math.Abs(got-2*base17) > 1e-12 {
		t.Errorf("w=17: %v, want doubled %v", got, 2*base17)
	}
	if PaperCost(LightGBM, 17, h, p) <= pow2 {
		t.Error("non-power-of-two should cost more")
	}
}

func TestTable1Ordering(t *testing.T) {
	// For large histograms and many workers (the paper's regime), DimBoost
	// and LightGBM (pow-2) beat XGBoost beats MLlib.
	p := GigabitEthernet()
	h := 50e6 // GradHist row for 330K features ≈ 2*20*330K*4 bytes
	for _, w := range []int{16, 32, 64} {
		ml := PaperCost(MLlib, w, h, p)
		xgb := PaperCost(XGBoost, w, h, p)
		lgbm := PaperCost(LightGBM, w, h, p)
		dim := PaperCost(DimBoost, w, h, p)
		if !(dim < xgb && xgb < ml) {
			t.Errorf("w=%d: want dim(%v) < xgb(%v) < mllib(%v)", w, dim, xgb, ml)
		}
		if math.Abs(lgbm-dim) > dim { // comparable within 2x at pow-2 w
			t.Errorf("w=%d: lightgbm %v and dimboost %v should be comparable", w, lgbm, dim)
		}
	}
}

func TestSimulatedMatchesClosedFormNoGamma(t *testing.T) {
	// With γ=0, the schedule simulation should track the closed forms
	// closely for power-of-two w (the paper derives them for that case).
	p := Params{Alpha: 1e-4, Beta: 8e-9, Gamma: 0}
	h := int64(16 << 20)
	for _, w := range []int{2, 4, 8, 16, 32} {
		for _, sys := range Systems {
			sim := Evaluate(ScheduleFor(sys, w, h), p)
			form := PaperCost(sys, w, float64(h), p)
			// MLlib's closed form counts w·h through the root link; the
			// schedule counts (w−1)·h. Allow the corresponding slack.
			lo := 0.7
			if sys == MLlib {
				lo = float64(w-1) / float64(w) * 0.95
			}
			ratio := sim / form
			if ratio < lo || ratio > 1.3 {
				t.Errorf("%s w=%d: simulated %.6g vs closed form %.6g (ratio %.2f)", sys, w, sim, form, ratio)
			}
		}
	}
}

func TestSimulatedOrderingMatchesPaper(t *testing.T) {
	// The qualitative claim of §3 under the full model with merge costs.
	p := GigabitEthernet()
	h := int64(50 << 20)
	for _, w := range []int{8, 16, 32, 64} {
		ml := Evaluate(ScheduleFor(MLlib, w, h), p)
		xgb := Evaluate(ScheduleFor(XGBoost, w, h), p)
		dim := Evaluate(ScheduleFor(DimBoost, w, h), p)
		lgbm := Evaluate(ScheduleFor(LightGBM, w, h), p)
		if !(dim < xgb && xgb < ml) {
			t.Errorf("w=%d: dim=%v xgb=%v ml=%v out of order", w, dim, xgb, ml)
		}
		if dim > lgbm*1.5 {
			t.Errorf("w=%d: dimboost %v much worse than lightgbm %v", w, dim, lgbm)
		}
	}
}

func TestEvaluateSmallMessagesFavorTree(t *testing.T) {
	// For tiny messages latency dominates: the binomial tree's log(w)·α
	// beats the PS's (w−1)·α — exactly why the paper says existing
	// implementations are fine for low-dimensional data.
	p := GigabitEthernet()
	h := int64(64)
	w := 64
	xgb := Evaluate(ScheduleFor(XGBoost, w, h), p)
	dim := Evaluate(ScheduleFor(DimBoost, w, h), p)
	if xgb >= dim {
		t.Errorf("small message: xgboost %v should beat dimboost %v", xgb, dim)
	}
}

func TestEvaluateEmptySchedule(t *testing.T) {
	if got := Evaluate(nil, GigabitEthernet()); got != 0 {
		t.Fatalf("empty schedule cost %v", got)
	}
}

func TestEvaluateSingleTransfer(t *testing.T) {
	p := Params{Alpha: 1, Beta: 2, Gamma: 3}
	s := comm.Schedule{{{From: 0, To: 1, Bytes: 10}}}
	// α + 10β + 10γ = 1 + 20 + 30
	if got := Evaluate(s, p); got != 51 {
		t.Fatalf("cost = %v, want 51", got)
	}
}

func TestSystemString(t *testing.T) {
	names := map[System]string{MLlib: "MLlib", XGBoost: "XGBoost", LightGBM: "LightGBM", DimBoost: "DimBoost"}
	for sys, want := range names {
		if sys.String() != want {
			t.Errorf("%d: %s", int(sys), sys)
		}
	}
	if System(9).String() != "System(9)" {
		t.Error("unknown system string")
	}
}

func TestGigabitDefaults(t *testing.T) {
	p := GigabitEthernet()
	if p.Alpha <= 0 || p.Beta <= 0 || p.Gamma <= 0 || p.Gamma >= p.Beta {
		t.Fatalf("implausible defaults %+v", p)
	}
}
