module dimboost

go 1.22
