package dimboost_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§7, Appendix A), at a reduced Scale so `go test -bench=.` completes in
// minutes; `cmd/dimboost-bench` runs the same experiments at full laptop
// scale. Additional micro-benchmarks cover the core data structures the
// experiments build on.

import (
	"fmt"
	"io"
	"testing"

	"dimboost"
	"dimboost/internal/compress"
	"dimboost/internal/experiments"
	"dimboost/internal/histogram"
	"dimboost/internal/sketch"
)

// benchScale keeps the macro-benchmarks short.
const benchScale = experiments.Scale(0.05)

func BenchmarkFig1RuntimeVsFeatures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1CostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard)
	}
}

func BenchmarkTable3Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12EndToEnd(b *testing.B) {
	for _, ds := range []experiments.Fig12Dataset{experiments.RCV1, experiments.Synthesis, experiments.Gender} {
		b.Run(string(ds), func(b *testing.B) {
			scale := benchScale
			if ds == experiments.Gender {
				scale = experiments.Scale(0.02) // 330K features; keep dense baselines short
			}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig12(io.Discard, ds, scale); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable4ParameterServers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(io.Discard, experiments.Scale(0.02)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5FeatureDimension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(io.Discard, experiments.Scale(0.1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6PCA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(io.Discard, experiments.Scale(0.02)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14LowDimensional(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA1Unbiasedness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.A1(io.Discard)
	}
}

// --- Micro-benchmarks on the core data structures -----------------------

func benchData(b *testing.B, rows, features, nnz int) *dimboost.Dataset {
	b.Helper()
	return dimboost.Generate(dimboost.SyntheticConfig{
		NumRows: rows, NumFeatures: features, AvgNNZ: nnz, Zipf: 1.3, Seed: 7,
	})
}

func BenchmarkHistogramBuildSparse(b *testing.B) {
	d := benchData(b, 5000, 20000, 100)
	set := sketch.NewSet(d.NumFeatures, 0.04)
	set.AddDataset(d)
	layout, err := histogram.NewLayout(histogram.AllFeatures(d.NumFeatures), set.Candidates(12), d.NumFeatures)
	if err != nil {
		b.Fatal(err)
	}
	grad := make([]float64, d.NumRows())
	hess := make([]float64, d.NumRows())
	rows := make([]int32, d.NumRows())
	for i := range rows {
		rows[i] = int32(i)
		grad[i] = float64(i % 3)
		hess[i] = 0.3
	}
	h := histogram.New(layout)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		histogram.BuildSparse(h, d, rows, grad, hess)
	}
	b.ReportMetric(float64(d.NNZ()), "nnz/op")
}

// BenchmarkHistogramBuildBinned runs the same workload as
// BenchmarkHistogramBuildSparse over the quantized mirror, so the two
// numbers are directly comparable.
func BenchmarkHistogramBuildBinned(b *testing.B) {
	d := benchData(b, 5000, 20000, 100)
	set := sketch.NewSet(d.NumFeatures, 0.04)
	set.AddDataset(d)
	layout, err := histogram.NewLayout(histogram.AllFeatures(d.NumFeatures), set.Candidates(12), d.NumFeatures)
	if err != nil {
		b.Fatal(err)
	}
	grad := make([]float64, d.NumRows())
	hess := make([]float64, d.NumRows())
	rows := make([]int32, d.NumRows())
	for i := range rows {
		rows[i] = int32(i)
		grad[i] = float64(i % 3)
		hess[i] = 0.3
	}
	bn := histogram.NewBinned(d, layout, 4)
	h := histogram.New(layout)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		histogram.BuildSparseBinned(h, bn, rows, grad, hess)
	}
	b.ReportMetric(float64(bn.NNZ()), "nnz/op")
}

// BenchmarkBinnedConstruction times the once-per-tree quantization pass
// that the per-node build savings have to amortize.
func BenchmarkBinnedConstruction(b *testing.B) {
	d := benchData(b, 5000, 20000, 100)
	set := sketch.NewSet(d.NumFeatures, 0.04)
	set.AddDataset(d)
	layout, err := histogram.NewLayout(histogram.AllFeatures(d.NumFeatures), set.Candidates(12), d.NumFeatures)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn := histogram.NewBinned(d, layout, 4)
		if bn.NNZ() == 0 {
			b.Fatal("empty binned matrix")
		}
	}
}

func BenchmarkHistogramBuildDense(b *testing.B) {
	d := benchData(b, 500, 5000, 50)
	set := sketch.NewSet(d.NumFeatures, 0.04)
	set.AddDataset(d)
	layout, err := histogram.NewLayout(histogram.AllFeatures(d.NumFeatures), set.Candidates(12), d.NumFeatures)
	if err != nil {
		b.Fatal(err)
	}
	grad := make([]float64, d.NumRows())
	hess := make([]float64, d.NumRows())
	rows := make([]int32, d.NumRows())
	for i := range rows {
		rows[i] = int32(i)
		grad[i] = 1
		hess[i] = 0.3
	}
	h := histogram.New(layout)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		histogram.BuildDense(h, d, rows, grad, hess)
	}
}

func BenchmarkCompressEncode8Bit(b *testing.B) {
	enc := compress.NewEncoder(1)
	values := make([]float64, 1<<16)
	for i := range values {
		values[i] = float64(i%997) - 500
	}
	b.SetBytes(int64(len(values) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(values, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGKSketchInsert(b *testing.B) {
	s := sketch.NewGK(0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(float64(i % 100000))
	}
}

func BenchmarkSingleMachineTrain(b *testing.B) {
	d := benchData(b, 2000, 10000, 50)
	cfg := dimboost.DefaultConfig()
	cfg.NumTrees = 5
	cfg.MaxDepth = 5
	cfg.Parallelism = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dimboost.Train(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainParallel sweeps the shared pool size over the
// BenchmarkSingleMachineTrain workload. The trained model is bit-identical
// at every level (see TestModelIndependentOfParallelism); on a multi-core
// host the sub-benchmarks separate, on a single core they time alike.
func BenchmarkTrainParallel(b *testing.B) {
	d := benchData(b, 2000, 10000, 50)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			cfg := dimboost.DefaultConfig()
			cfg.NumTrees = 5
			cfg.MaxDepth = 5
			cfg.Parallelism = p
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dimboost.Train(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDistributedTrain(b *testing.B) {
	d := benchData(b, 2000, 10000, 50)
	cfg := dimboost.DefaultClusterConfig(4, 4)
	cfg.NumTrees = 5
	cfg.MaxDepth = 5
	cfg.Parallelism = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dimboost.TrainDistributed(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	d := benchData(b, 2000, 10000, 50)
	cfg := dimboost.DefaultConfig()
	cfg.NumTrees = 20
	cfg.MaxDepth = 6
	cfg.Parallelism = 1
	model, err := dimboost.Train(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Predict(d.Row(i % d.NumRows()))
	}
}

// --- Ablation micro-benchmarks for extension features --------------------

func BenchmarkHistSubtraction(b *testing.B) {
	d := benchData(b, 6000, 500, 40)
	for _, sub := range []bool{false, true} {
		name := "off"
		if sub {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := dimboost.DefaultConfig()
			cfg.NumTrees = 3
			cfg.MaxDepth = 6
			cfg.Parallelism = 1
			cfg.HistSubtraction = sub
			for i := 0; i < b.N; i++ {
				if _, err := dimboost.Train(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWeightedCandidates(b *testing.B) {
	d := benchData(b, 3000, 500, 30)
	for _, weighted := range []bool{false, true} {
		name := "unweighted"
		if weighted {
			name = "weighted"
		}
		b.Run(name, func(b *testing.B) {
			cfg := dimboost.DefaultConfig()
			cfg.NumTrees = 3
			cfg.MaxDepth = 5
			cfg.Parallelism = 1
			cfg.WeightedCandidates = weighted
			for i := 0; i < b.N; i++ {
				if _, err := dimboost.Train(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeOverload is the CI smoke for the serving-tier overload
// scenario: open-loop load past a small admission window, scores verified
// before any throughput is recorded. The coalesce pass rides along: batches
// must actually merge (mean occupancy > 1), the coalescer itself must shed
// nothing, and every coalesced score must be bit-identical to solo.
func BenchmarkServeOverload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ServeBench(io.Discard, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		c := res.Coalesce
		if c == nil || !c.BitIdentical {
			b.Fatal("coalesce pass missing or not bit-identical to solo")
		}
		if c.MeanOccupancy <= 1 {
			b.Fatalf("mean batch occupancy %.2f, want > 1", c.MeanOccupancy)
		}
		if c.CoalesceShed != 0 {
			b.Fatalf("%d requests shed by the coalescer", c.CoalesceShed)
		}
	}
}
