package dimboost_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"dimboost"
)

// TestPublicAPIEndToEnd exercises the full public surface the way a
// downstream user would: generate data, train locally, train distributed,
// serialize, score.
func TestPublicAPIEndToEnd(t *testing.T) {
	train, test := dimboost.GenerateTrainTest(dimboost.SyntheticConfig{
		NumRows: 1000, NumFeatures: 200, AvgNNZ: 15, Seed: 1, Zipf: 1.2, NoiseStd: 0.2,
	})

	cfg := dimboost.DefaultConfig()
	cfg.NumTrees = 6
	cfg.MaxDepth = 4
	model, err := dimboost.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	preds := model.PredictBatch(test)
	if e := dimboost.ErrorRate(test.Labels, preds); e > 0.49 {
		t.Fatalf("error rate %v", e)
	}
	if auc, err := dimboost.AUC(test.Labels, preds); err != nil || auc < 0.5 {
		t.Fatalf("auc %v err %v", auc, err)
	}
	if ll := dimboost.LogLoss(test.Labels, preds); ll <= 0 {
		t.Fatalf("logloss %v", ll)
	}

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := dimboost.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Predict(test.Row(0)) != model.Predict(test.Row(0)) {
		t.Fatal("serialization changed predictions")
	}

	ccfg := dimboost.DefaultClusterConfig(3, 2)
	ccfg.NumTrees = 4
	ccfg.MaxDepth = 4
	res, err := dimboost.TrainDistributed(train, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Model.Trees) != 4 || res.Stats.TotalBytes <= 0 {
		t.Fatal("distributed result incomplete")
	}
}

func TestPublicAPILibSVMAndPCA(t *testing.T) {
	d := dimboost.Generate(dimboost.SyntheticConfig{NumRows: 200, NumFeatures: 100, AvgNNZ: 10, Seed: 2, Zipf: 1.2})
	var buf bytes.Buffer
	if err := dimboost.WriteLibSVM(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := dimboost.ReadLibSVM(&buf, 100)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 200 {
		t.Fatal("libsvm round trip")
	}

	p, err := dimboost.FitPCA(d, 5, dimboost.PCAOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	red, err := p.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	if red.NumFeatures != 5 {
		t.Fatal("pca transform shape")
	}

	b := dimboost.NewBuilder(3)
	b.AddDense([]float32{1, 0, 2}, 1)
	if ds := b.Build(); ds.NumRows() != 1 {
		t.Fatal("builder")
	}
	dd, err := dimboost.FromDense([][]float32{{1, 2}}, []float32{0})
	if err != nil || dd.NumFeatures != 2 {
		t.Fatal("FromDense")
	}
}

func TestPresetShapes(t *testing.T) {
	for _, tc := range []struct {
		cfg dimboost.SyntheticConfig
		m   int
	}{
		{dimboost.RCV1Like(5, 1), 47_000},
		{dimboost.SynthesisLike(5, 1), 100_000},
		{dimboost.GenderLike(5, 1), 330_000},
		{dimboost.Synthesis2Like(5, 1), 1000},
	} {
		if tc.cfg.NumFeatures != tc.m {
			t.Errorf("preset features %d, want %d", tc.cfg.NumFeatures, tc.m)
		}
	}
}

func TestRegressionPublicAPI(t *testing.T) {
	d := dimboost.Generate(dimboost.SyntheticConfig{NumRows: 300, NumFeatures: 50, AvgNNZ: 8, Seed: 4, Regression: true, NoiseStd: 0.1})
	cfg := dimboost.DefaultConfig()
	cfg.Loss = dimboost.Squared
	cfg.NumTrees = 10
	cfg.MaxDepth = 4
	model, err := dimboost.Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r := dimboost.RMSE(d.Labels, model.PredictBatch(d)); r >= dimboost.RMSE(d.Labels, make([]float64, d.NumRows())) {
		t.Fatalf("regression did not beat zero predictor: %v", r)
	}
}

func TestCrossValidatePublicAPI(t *testing.T) {
	d := dimboost.Generate(dimboost.SyntheticConfig{NumRows: 300, NumFeatures: 60, AvgNNZ: 8, Seed: 6, Zipf: 1.2})
	cfg := dimboost.DefaultConfig()
	cfg.NumTrees = 3
	cfg.MaxDepth = 3
	res, err := dimboost.CrossValidate(d, cfg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldScores) != 3 {
		t.Fatalf("%d folds", len(res.FoldScores))
	}
}

func TestModelHandlerPublicAPI(t *testing.T) {
	d := dimboost.Generate(dimboost.SyntheticConfig{NumRows: 200, NumFeatures: 40, AvgNNZ: 6, Seed: 7})
	cfg := dimboost.DefaultConfig()
	cfg.NumTrees = 2
	cfg.MaxDepth = 3
	m, err := dimboost.Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(dimboost.ModelHandler(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestBinaryAndTunePublicAPI(t *testing.T) {
	d := dimboost.Generate(dimboost.SyntheticConfig{NumRows: 150, NumFeatures: 40, AvgNNZ: 6, Seed: 8, Zipf: 1.2})
	var buf bytes.Buffer
	if err := dimboost.WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := dimboost.ReadBinary(&buf)
	if err != nil || back.NumRows() != 150 {
		t.Fatalf("binary round trip: %v", err)
	}

	base := dimboost.DefaultConfig()
	base.NumTrees = 2
	base.MaxDepth = 3
	grid := dimboost.TuneGrid(base, dimboost.AxisLearningRate(0.1, 0.3))
	if len(grid) != 2 {
		t.Fatalf("%d candidates", len(grid))
	}
	out, err := dimboost.TuneSearch(d, grid, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].CV.Mean > out[1].CV.Mean {
		t.Fatalf("tune outcomes wrong: %+v", out)
	}
}
