// Command dimboost-datagen writes synthetic sparse datasets in LibSVM
// format, shaped like the paper's evaluation datasets or fully custom.
//
// Usage:
//
//	dimboost-datagen -preset rcv1 -rows 50000 -out rcv1.libsvm
//	dimboost-datagen -rows 10000 -features 100000 -nnz 100 -out data.libsvm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dimboost"
)

func main() {
	var (
		preset     = flag.String("preset", "", "dataset shape: rcv1 | synthesis | gender | synthesis2 (overrides -features/-nnz)")
		rows       = flag.Int("rows", 10000, "number of instances")
		features   = flag.Int("features", 10000, "number of features")
		nnz        = flag.Int("nnz", 50, "average nonzeros per instance")
		regression = flag.Bool("regression", false, "continuous labels instead of binary")
		noise      = flag.Float64("noise", 0.2, "label noise standard deviation")
		zipf       = flag.Float64("zipf", 1.3, "feature popularity skew (0 disables)")
		seed       = flag.Int64("seed", 42, "generator seed")
		out        = flag.String("out", "", "output file (default stdout)")
		format     = flag.String("format", "libsvm", "output format: libsvm | binary")
	)
	flag.Parse()

	var cfg dimboost.SyntheticConfig
	switch *preset {
	case "":
		cfg = dimboost.SyntheticConfig{NumRows: *rows, NumFeatures: *features, AvgNNZ: *nnz, Zipf: *zipf, Seed: *seed}
	case "rcv1":
		cfg = dimboost.RCV1Like(*rows, *seed)
	case "synthesis":
		cfg = dimboost.SynthesisLike(*rows, *seed)
	case "gender":
		cfg = dimboost.GenderLike(*rows, *seed)
	case "synthesis2":
		cfg = dimboost.Synthesis2Like(*rows, *seed)
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	cfg.Regression = *regression
	cfg.NoiseStd = *noise

	d := dimboost.Generate(cfg)
	fmt.Fprintf(os.Stderr, "generated %d rows × %d features (%.1f nnz/row, %.1f MB)\n",
		d.NumRows(), d.NumFeatures, d.AvgNNZ(), float64(d.SizeBytes())/(1<<20))

	switch *format {
	case "libsvm":
		if *out == "" {
			if err := dimboost.WriteLibSVM(os.Stdout, d); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := dimboost.WriteLibSVMFile(*out, d); err != nil {
			log.Fatal(err)
		}
	case "binary":
		if *out == "" {
			if err := dimboost.WriteBinary(os.Stdout, d); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := dimboost.WriteBinaryFile(*out, d); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown format %q", *format)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
