// Command dimboost-train trains a GBDT model from a LibSVM file, either on
// a single machine or across an in-process parameter-server cluster.
//
// Usage:
//
//	dimboost-train -data train.libsvm -model model.bin -trees 50 -depth 7
//	dimboost-train -data train.libsvm -model model.bin -workers 8 -servers 8
//	dimboost-train -data train.bin -model model.bin -mem-budget 256MiB
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"dimboost"
	"dimboost/internal/obs"
)

// loadData reads LibSVM or binary data, picking the format by extension
// (.bin/.dimb = binary).
func loadData(path string, features int) (*dimboost.Dataset, error) {
	if strings.HasSuffix(path, ".bin") || strings.HasSuffix(path, ".dimb") {
		return dimboost.ReadBinaryFile(path)
	}
	return dimboost.ReadLibSVMFile(path, features)
}

func main() {
	var (
		data     = flag.String("data", "", "training data in LibSVM format (required)")
		model    = flag.String("model", "model.bin", "output model file")
		features = flag.Int("features", 0, "feature count (0 infers from data)")
		trees    = flag.Int("trees", 20, "number of trees (T)")
		depth    = flag.Int("depth", 7, "maximal tree depth (d)")
		cands    = flag.Int("cands", 20, "split candidates per feature (K)")
		lr       = flag.Float64("lr", 0.1, "learning rate (eta)")
		lambda   = flag.Float64("lambda", 1.0, "L2 regularization")
		gamma    = flag.Float64("gamma", 0.0, "per-leaf penalty")
		sample   = flag.Float64("feature-sample", 1.0, "feature sampling ratio (sigma)")
		lossName = flag.String("loss", "logistic", "objective: logistic | squared")
		par      = flag.Int("parallelism", 0, "training pool workers; model is bit-identical at any value (0 = GOMAXPROCS)")
		threads  = flag.Int("threads", 0, "deprecated alias for -parallelism")
		batch    = flag.Int("batch", 10000, "parallel build batch size (b)")
		seed     = flag.Int64("seed", 42, "random seed")
		workers  = flag.Int("workers", 0, "distributed worker count (0 = single process)")
		servers  = flag.Int("servers", 0, "parameter server count (default = workers)")
		bits     = flag.Uint("bits", 8, "compressed histogram bits (distributed; 0 = float32)")
		pullBits = flag.Uint("pull-bits", 0, "compressed pull-response bits (distributed; 0 = raw floats)")
		sparse   = flag.Bool("sparse", false, "sparse wire payloads: elide zero histogram buckets when smaller (distributed)")
		valFrac  = flag.Float64("validate", 0.1, "held-out fraction for the final report")
		ckptDir  = flag.String("checkpoint-dir", "", "directory for per-tree checkpoints (distributed mode)")
		resume   = flag.Bool("resume", false, "resume from the checkpoint in -checkpoint-dir")
		metrics  = flag.String("metrics-listen", "", "address for GET /metrics and /debug/obs during training (empty = disabled)")
		budget   = flag.String("mem-budget", "", "out-of-core training memory budget, e.g. 512MiB (requires binary -data; empty = in-memory)")
	)
	flag.Parse()
	if *data == "" {
		log.Fatal("-data is required")
	}
	memBudget, err := dimboost.ParseMemoryBudget(*budget)
	if err != nil {
		log.Fatalf("-mem-budget: %v", err)
	}
	if memBudget > 0 {
		if *workers > 0 {
			log.Fatal("-mem-budget applies to single-process training only (drop -workers)")
		}
		if !strings.HasSuffix(*data, ".bin") && !strings.HasSuffix(*data, ".dimb") {
			log.Fatal("-mem-budget requires -data in the chunked binary format (.bin/.dimb); convert LibSVM data with dimboost.WriteBinaryFile first")
		}
	}
	if *metrics != "" {
		addr, err := obs.Default().Serve(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", addr)
	}
	if *resume && *ckptDir == "" {
		log.Fatal("-resume requires -checkpoint-dir")
	}
	if *ckptDir != "" && *workers == 0 {
		log.Fatal("-checkpoint-dir requires distributed mode (-workers > 0)")
	}

	// Out-of-core mode never materializes the dataset, so there is no
	// held-out split to evaluate; everything on disk is training data.
	var train, test *dimboost.Dataset
	if memBudget == 0 {
		d, err := loadData(*data, *features)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d rows × %d features (%.1f nnz/row)\n", d.NumRows(), d.NumFeatures, d.AvgNNZ())
		train, test = d.Split(1 - *valFrac)
	}

	cfg := dimboost.DefaultConfig()
	cfg.NumTrees = *trees
	cfg.MaxDepth = *depth
	cfg.NumCandidates = *cands
	cfg.LearningRate = *lr
	cfg.Lambda = *lambda
	cfg.Gamma = *gamma
	cfg.FeatureSampleRatio = *sample
	if *par == 0 {
		*par = *threads
	}
	cfg.Parallelism = *par
	cfg.BatchSize = *batch
	cfg.Seed = *seed
	cfg.MemoryBudget = memBudget
	switch *lossName {
	case "logistic":
		cfg.Loss = dimboost.Logistic
	case "squared":
		cfg.Loss = dimboost.Squared
	default:
		log.Fatalf("unknown loss %q", *lossName)
	}

	start := time.Now()
	var m *dimboost.Model
	if memBudget > 0 {
		m, err = dimboost.TrainOutOfCore(*data, cfg)
		var be *dimboost.BudgetError
		if errors.As(err, &be) {
			// A budget below one chunk's working set can never make
			// progress; fail fast with the smallest budget that can.
			log.Fatalf("%v", be)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("out-of-core: trained under a %s budget\n", memBudget)
	} else if *workers > 0 {
		p := *servers
		if p == 0 {
			p = *workers
		}
		ccfg := dimboost.DefaultClusterConfig(*workers, p)
		ccfg.Config = cfg
		ccfg.Bits = *bits
		ccfg.PullBits = *pullBits
		ccfg.SparseWire = *sparse
		if *ckptDir != "" {
			sink, err := dimboost.NewDirCheckpointSink(*ckptDir)
			if err != nil {
				log.Fatal(err)
			}
			ccfg.Checkpoint = sink
			retry := dimboost.DefaultRetryPolicy()
			ccfg.Retry = &retry
			if *resume {
				ck, err := dimboost.LoadCheckpoint(*ckptDir)
				if err != nil {
					log.Fatal(err)
				}
				if ck != nil {
					ccfg.Resume = ck
					fmt.Printf("resuming from checkpoint: %d/%d trees done\n", ck.TreesDone, ccfg.NumTrees)
				} else {
					fmt.Println("no checkpoint found; starting from tree 0")
				}
			}
		}
		res, err := dimboost.TrainDistributed(train, ccfg)
		if err != nil {
			log.Fatal(err)
		}
		m = res.Model
		fmt.Printf("distributed: %d workers, %d servers, %d bytes moved (modeled comm %s)\n",
			*workers, p, res.Stats.TotalBytes, res.Stats.ModeledCommTime.Round(time.Millisecond))
	} else {
		m, err = dimboost.Train(train, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("trained %d trees in %s\n", len(m.Trees), time.Since(start).Round(time.Millisecond))

	if test != nil && test.NumRows() > 0 {
		preds := m.PredictBatch(test)
		if cfg.Loss == dimboost.Logistic {
			auc, _ := dimboost.AUC(test.Labels, preds)
			fmt.Printf("held-out: error %.4f  auc %.4f  logloss %.4f\n",
				dimboost.ErrorRate(test.Labels, preds), auc, dimboost.LogLoss(test.Labels, preds))
		} else {
			fmt.Printf("held-out: rmse %.4f\n", dimboost.RMSE(test.Labels, preds))
		}
	}
	if err := m.SaveFile(*model); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model saved to %s\n", *model)
}
