// Command dimboost-node runs one role of a genuinely multi-process DimBoost
// cluster over TCP: a parameter server, the barrier master, or a worker.
// Every process is given the full peer address map; workers load the
// training file and carve out their own row shard.
//
// Example 2-worker, 2-server cluster on one machine:
//
//	dimboost-node -role master  -listen :7000 -workers 2 &
//	dimboost-node -role server -id 0 -listen :7001 -workers 2 -servers 2 -features 1000 &
//	dimboost-node -role server -id 1 -listen :7002 -workers 2 -servers 2 -features 1000 &
//	dimboost-node -role worker -id 0 -listen :7003 -workers 2 -servers 2 \
//	    -peers master=:7000,server-0=:7001,server-1=:7002 -data train.libsvm -model out.bin &
//	dimboost-node -role worker -id 1 -listen :7004 -workers 2 -servers 2 \
//	    -peers master=:7000,server-0=:7001,server-1=:7002 -data train.libsvm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"dimboost/internal/cluster"
	"dimboost/internal/dataset"
	"dimboost/internal/obs"
	"dimboost/internal/transport"
)

func main() {
	var (
		role     = flag.String("role", "", "master | server | worker (required)")
		id       = flag.Int("id", 0, "server/worker index")
		listen   = flag.String("listen", "127.0.0.1:0", "listen address")
		peers    = flag.String("peers", "", "comma-separated name=addr peer map")
		workers  = flag.Int("workers", 1, "total worker count (w)")
		servers  = flag.Int("servers", 1, "parameter server count (p)")
		features = flag.Int("features", 0, "global feature count (servers and workers must agree)")
		data     = flag.String("data", "", "training data in LibSVM format (workers)")
		model    = flag.String("model", "", "output model file (worker 0)")
		trees    = flag.Int("trees", 20, "number of trees")
		depth    = flag.Int("depth", 7, "maximal tree depth")
		bits     = flag.Uint("bits", 8, "compressed histogram bits (0 = float32)")
		pullBits = flag.Uint("pull-bits", 0, "compressed pull-response bits (0 = raw floats)")
		sparse   = flag.Bool("sparse", false, "sparse wire payloads: elide zero histogram buckets when smaller")
		metrics  = flag.String("metrics-listen", "", "address for GET /metrics and /debug/obs (empty = disabled)")
	)
	flag.Parse()

	if *metrics != "" {
		addr, err := obs.Default().Serve(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", addr)
	}

	cfg := cluster.DefaultConfig(*workers, *servers)
	cfg.NumTrees = *trees
	cfg.MaxDepth = *depth
	cfg.Bits = *bits
	cfg.PullBits = *pullBits
	cfg.SparseWire = *sparse

	name := ""
	switch *role {
	case "master":
		name = cluster.MasterName
	case "server":
		name = cluster.ServerName(*id)
	case "worker":
		name = cluster.WorkerName(*id)
	default:
		log.Fatalf("unknown role %q", *role)
	}

	ep, err := transport.NewTCPEndpoint(name, *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()
	fmt.Printf("%s listening on %s\n", name, ep.Addr())
	for _, pair := range strings.Split(*peers, ",") {
		if pair == "" {
			continue
		}
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			log.Fatalf("bad peer %q (want name=addr)", pair)
		}
		ep.AddPeer(pair[:eq], pair[eq+1:])
	}

	switch *role {
	case "master":
		cluster.ServeMaster(ep, *workers)
		waitForInterrupt()

	case "server":
		if *features <= 0 {
			log.Fatal("-features is required for servers")
		}
		if err := cluster.ServeServer(ep, *id, *features, cfg); err != nil {
			log.Fatal(err)
		}
		waitForInterrupt()

	case "worker":
		if *data == "" {
			log.Fatal("-data is required for workers")
		}
		full, err := dataset.ReadLibSVMFile(*data, *features)
		if err != nil {
			log.Fatal(err)
		}
		lo, hi := dataset.ShardRange(full.NumRows(), *workers, *id)
		shard := full.Subset(lo, hi)
		fmt.Printf("worker %d: rows [%d,%d) of %d\n", *id, lo, hi, full.NumRows())
		start := time.Now()
		res, err := cluster.RunWorker(ep, *id, shard, full.NumFeatures, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("worker %d finished %d trees in %s\n", *id, len(res.Model.Trees), time.Since(start).Round(time.Millisecond))
		if *id == 0 && *model != "" {
			if err := res.Model.SaveFile(*model); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("model saved to %s\n", *model)
		}
	}
}

func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}
