// Command dimboost-loadgen drives open-loop load at a dimboost-serve
// instance and reports throughput, shed rate, and accepted-request latency
// percentiles — the tool for verifying an admission configuration sheds
// overload instead of collapsing.
//
// Usage:
//
//	dimboost-loadgen -url http://localhost:8080/predict -rate 500 -duration 10s
//	  [-tenant teamA] [-body '{"instances":[...]}' | -body-file req.json]
//	  [-distinct-bodies 256 -instances 1 -features 5000 -nnz 12 -seed 1]
//	  [-content-type application/json] [-json out.json]
//
// Open loop: arrivals come at -rate regardless of completions, like real
// traffic. 429/503 responses count as shed (and each must carry
// Retry-After); only 200s enter the latency percentiles.
//
// With -distinct-bodies N the generator synthesizes N distinct request
// payloads (round-robined across arrivals), each carrying -instances sparse
// rows over -features standardized (zero-mean, so negative-valued) features
// — the many-small-requests traffic shape that server-side coalescing
// exists for.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"dimboost/internal/loadgen"
)

// syntheticBodies builds n distinct /predict payloads of k sparse rows each
// over f standardized features (values drawn from a unit normal, so roughly
// half are negative).
func syntheticBodies(n, k, f, nnz int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	type inst struct {
		Indices []int32   `json:"indices"`
		Values  []float32 `json:"values"`
	}
	bodies := make([][]byte, n)
	for i := range bodies {
		ins := make([]inst, k)
		for j := range ins {
			m := 1 + rng.Intn(2*nnz-1)
			seen := map[int32]bool{}
			var idx []int32
			for len(idx) < m {
				ft := int32(rng.Intn(f))
				if !seen[ft] {
					seen[ft] = true
					idx = append(idx, ft)
				}
			}
			sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
			vals := make([]float32, m)
			for v := range vals {
				vals[v] = float32(math.Round(rng.NormFloat64()*1000) / 1000)
			}
			ins[j] = inst{Indices: idx, Values: vals}
		}
		b, err := json.Marshal(map[string]any{"instances": ins})
		if err != nil {
			log.Fatal(err)
		}
		bodies[i] = b
	}
	return bodies
}

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8080/predict", "target URL")
		rate        = flag.Float64("rate", 100, "arrival rate, requests/second")
		duration    = flag.Duration("duration", 10*time.Second, "how long to keep arrivals coming")
		tenant      = flag.String("tenant", "", "X-Tenant header value")
		body        = flag.String("body", `{"instances":[{"indices":[0],"values":[1.0]}]}`, "request body")
		bodyFile    = flag.String("body-file", "", "read the request body from this file instead of -body")
		contentType = flag.String("content-type", "application/json", "request Content-Type")
		jsonOut     = flag.String("json", "", "write the machine-readable result to this file")

		distinct  = flag.Int("distinct-bodies", 0, "synthesize this many distinct payloads, round-robined (0 = use -body)")
		instances = flag.Int("instances", 1, "sparse rows per synthesized payload")
		features  = flag.Int("features", 5000, "feature-space width for synthesized payloads")
		nnz       = flag.Int("nnz", 12, "average non-zeros per synthesized row")
		seed      = flag.Int64("seed", 1, "seed for synthesized payloads")
	)
	flag.Parse()

	payload := []byte(*body)
	if *bodyFile != "" {
		b, err := os.ReadFile(*bodyFile)
		if err != nil {
			log.Fatal(err)
		}
		payload = b
	}
	var bodies [][]byte
	if *distinct > 0 {
		bodies = syntheticBodies(*distinct, *instances, *features, *nnz, *seed)
		fmt.Printf("synthesized %d distinct bodies × %d instance(s) over %d features\n",
			*distinct, *instances, *features)
	}

	fmt.Printf("open-loop: %s at %g req/s for %s\n", *url, *rate, *duration)
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		URL:         *url,
		Rate:        *rate,
		Duration:    *duration,
		Body:        payload,
		Bodies:      bodies,
		ContentType: *contentType,
		Tenant:      *tenant,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sent %d, accepted %d (%.1f req/s), shed %d (%.1f%%), errors %d\n",
		res.Sent, res.Accepted, res.Throughput, res.Shed, 100*res.ShedRate, res.Errors)
	fmt.Printf("accepted latency: p50 %s  p95 %s  p99 %s\n", res.P50, res.P95, res.P99)
	for code, n := range res.Statuses {
		fmt.Printf("  HTTP %d: %d\n", code, n)
	}
	if res.Shed > 0 && !res.RetryAfterOnAllSheds {
		fmt.Println("WARNING: some 429/503 responses were missing Retry-After")
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
