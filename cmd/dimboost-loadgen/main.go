// Command dimboost-loadgen drives open-loop load at a dimboost-serve
// instance and reports throughput, shed rate, and accepted-request latency
// percentiles — the tool for verifying an admission configuration sheds
// overload instead of collapsing.
//
// Usage:
//
//	dimboost-loadgen -url http://localhost:8080/predict -rate 500 -duration 10s
//	  [-tenant teamA] [-body '{"instances":[...]}' | -body-file req.json]
//	  [-content-type application/json] [-json out.json]
//
// Open loop: arrivals come at -rate regardless of completions, like real
// traffic. 429/503 responses count as shed (and each must carry
// Retry-After); only 200s enter the latency percentiles.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dimboost/internal/loadgen"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8080/predict", "target URL")
		rate        = flag.Float64("rate", 100, "arrival rate, requests/second")
		duration    = flag.Duration("duration", 10*time.Second, "how long to keep arrivals coming")
		tenant      = flag.String("tenant", "", "X-Tenant header value")
		body        = flag.String("body", `{"instances":[{"indices":[0],"values":[1.0]}]}`, "request body")
		bodyFile    = flag.String("body-file", "", "read the request body from this file instead of -body")
		contentType = flag.String("content-type", "application/json", "request Content-Type")
		jsonOut     = flag.String("json", "", "write the machine-readable result to this file")
	)
	flag.Parse()

	payload := []byte(*body)
	if *bodyFile != "" {
		b, err := os.ReadFile(*bodyFile)
		if err != nil {
			log.Fatal(err)
		}
		payload = b
	}

	fmt.Printf("open-loop: %s at %g req/s for %s\n", *url, *rate, *duration)
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		URL:         *url,
		Rate:        *rate,
		Duration:    *duration,
		Body:        payload,
		ContentType: *contentType,
		Tenant:      *tenant,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sent %d, accepted %d (%.1f req/s), shed %d (%.1f%%), errors %d\n",
		res.Sent, res.Accepted, res.Throughput, res.Shed, 100*res.ShedRate, res.Errors)
	fmt.Printf("accepted latency: p50 %s  p95 %s  p99 %s\n", res.P50, res.P95, res.P99)
	for code, n := range res.Statuses {
		fmt.Printf("  HTTP %d: %d\n", code, n)
	}
	if res.Shed > 0 && !res.RetryAfterOnAllSheds {
		fmt.Println("WARNING: some 429/503 responses were missing Retry-After")
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
