// Command dimboost-inspect prints a trained model's structure: size
// summary, gain-based feature importance, and optionally the full per-tree
// dump.
//
// Usage:
//
//	dimboost-inspect -model model.bin
//	dimboost-inspect -model model.bin -top 30 -dump
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dimboost"
)

func main() {
	var (
		modelPath = flag.String("model", "model.bin", "trained model file")
		top       = flag.Int("top", 20, "number of features to list by gain")
		dump      = flag.Bool("dump", false, "print the full per-tree dump")
	)
	flag.Parse()

	m, err := dimboost.LoadModelFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	internal, leaves := m.NumNodes()
	fmt.Printf("loss:           %s\n", m.Loss)
	fmt.Printf("trees:          %d\n", len(m.Trees))
	fmt.Printf("internal nodes: %d\n", internal)
	fmt.Printf("leaves:         %d\n", leaves)

	imp := m.Importance()
	fmt.Printf("\nfeatures used:  %d\n", len(imp))
	fmt.Printf("\ntop %d features by gain:\n", *top)
	fmt.Printf("%10s %14s %8s\n", "feature", "gain", "splits")
	for i, fi := range imp {
		if i >= *top {
			break
		}
		fmt.Printf("%10d %14.4f %8d\n", fi.Feature, fi.Gain, fi.Splits)
	}

	if *dump {
		fmt.Println()
		if err := m.Dump(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
