// Command dimboost-bench regenerates the paper's tables and figures at
// laptop scale. Each subcommand corresponds to one table or figure of the
// evaluation section; `all` runs everything in paper order.
//
// Usage:
//
//	dimboost-bench table1
//	dimboost-bench fig12 -dataset gender
//	dimboost-bench all -scale 0.5
//	dimboost-bench all -scale 0.1 -json timings.json -cpuprofile cpu.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"time"

	"dimboost/internal/cluster"
	"dimboost/internal/experiments"
	"dimboost/internal/faultinject"
	"dimboost/internal/obs"
	"dimboost/internal/transport"
)

// timing is one machine-readable per-experiment measurement (-json).
// Parallelism and Phases are set only by the train-parallel scenario,
// which emits one entry per pool size with its phase breakdown; Stats is
// set only by the serve scenario (throughput, shed rate, latency
// percentiles).
type timing struct {
	Name        string             `json:"name"`
	Seconds     float64            `json:"seconds"`
	Parallelism int                `json:"parallelism,omitempty"`
	Phases      map[string]float64 `json:"phases,omitempty"`
	Stats       map[string]float64 `json:"stats,omitempty"`
}

// meta records the host execution environment of a run: timings are only
// comparable between reports whose meta matches.
type meta struct {
	NumCPU     int   `json:"num_cpu"`
	GOMAXPROCS int   `json:"gomaxprocs"`
	GOMEMLIMIT int64 `json:"gomemlimit"`
}

// report is the -json output document; Scale makes runs comparable
// run-over-run only when taken at the same scale. Metrics is the full
// observability snapshot at exit — counters, gauges, and phase histograms
// accumulated across every experiment of the run.
type report struct {
	Scale       float64        `json:"scale"`
	GoVersion   string         `json:"go_version"`
	Meta        meta           `json:"meta"`
	Experiments []timing       `json:"experiments"`
	Metrics     []obs.Snapshot `json:"metrics,omitempty"`
}

func main() {
	scale := flag.Float64("scale", 1.0, "dataset row-count multiplier (smaller = quicker)")
	par := flag.Int("parallelism", 0, "training pool workers for every experiment (0 = per-experiment default); models stay bit-identical")
	ds := flag.String("dataset", "rcv1", "fig12 dataset: rcv1 | synthesis | gender")
	faultSpec := flag.String("fault-spec", "", "fault-injection spec for distributed runs, e.g. 'seed=7;server-*:err=0.02'")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	jsonOut := flag.String("json", "", "write machine-readable per-experiment timings to this file")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	// Flags may follow the subcommand as well.
	cmd := flag.Arg(0)
	if flag.NArg() > 1 {
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		scale2 := fs.Float64("scale", *scale, "dataset row-count multiplier")
		par2 := fs.Int("parallelism", *par, "training pool workers for every experiment")
		ds2 := fs.String("dataset", *ds, "fig12 dataset")
		fault2 := fs.String("fault-spec", *faultSpec, "fault-injection spec for distributed runs")
		cpu2 := fs.String("cpuprofile", *cpuProfile, "write a CPU profile to this file")
		mem2 := fs.String("memprofile", *memProfile, "write a heap profile to this file at exit")
		json2 := fs.String("json", *jsonOut, "write per-experiment timings to this file")
		if err := fs.Parse(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		scale, par, ds, faultSpec = scale2, par2, ds2, fault2
		cpuProfile, memProfile, jsonOut = cpu2, mem2, json2
	}
	s := experiments.Scale(*scale)
	experiments.Parallelism = *par
	out := os.Stdout

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // materialize only live allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	rep := report{Scale: *scale, GoVersion: runtime.Version(), Meta: meta{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOMEMLIMIT: debug.SetMemoryLimit(-1),
	}}
	if *jsonOut != "" {
		defer func() {
			rep.Metrics = obs.Default().Snapshot()
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *faultSpec != "" {
		spec, err := faultinject.ParseSpec(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		// Every distributed run trains over a fault-injecting network with
		// retries enabled, so the benchmarks double as a soak test of the
		// fault-tolerance machinery.
		var mu sync.Mutex
		var nets []*faultinject.Network
		cluster.TrainHooks.WrapNetwork = func(inner transport.Network) transport.Network {
			fn := faultinject.New(inner, spec)
			mu.Lock()
			nets = append(nets, fn)
			mu.Unlock()
			return fn
		}
		cluster.TrainHooks.Config = func(c *cluster.Config) {
			if c.Retry == nil {
				p := transport.DefaultRetryPolicy()
				c.Retry = &p
			}
		}
		defer func() {
			var total faultinject.Stats
			mu.Lock()
			for _, fn := range nets {
				st := fn.Stats()
				total.Errors += st.Errors
				total.RespLosses += st.RespLosses
				total.Delays += st.Delays
				total.Partitions += st.Partitions
			}
			mu.Unlock()
			fmt.Fprintf(out, "[fault injection: %d errors, %d lost responses, %d delays, %d partition refusals]\n",
				total.Errors, total.RespLosses, total.Delays, total.Partitions)
		}()
	}

	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		elapsed := time.Since(start)
		rep.Experiments = append(rep.Experiments, timing{Name: name, Seconds: elapsed.Seconds()})
		fmt.Fprintf(out, "[%s completed in %s]\n", name, elapsed.Round(time.Millisecond))
	}

	dispatch := map[string]func(){
		"fig1":   func() { run("fig1", func() error { _, err := experiments.Fig1(out, s); return err }) },
		"table1": func() { run("table1", func() error { experiments.Table1(out); return nil }) },
		"table3": func() { run("table3", func() error { _, err := experiments.Table3(out, s); return err }) },
		"fig12": func() {
			run("fig12-"+*ds, func() error {
				_, err := experiments.Fig12(out, experiments.Fig12Dataset(*ds), s)
				return err
			})
		},
		"serve": func() {
			start := time.Now()
			res, err := experiments.ServeBench(out, s)
			if err != nil {
				log.Fatalf("serve: %v", err)
			}
			rep.Experiments = append(rep.Experiments, timing{
				Name:    "serve-overload",
				Seconds: time.Since(start).Seconds(),
				Stats: map[string]float64{
					"max_concurrent":     float64(res.MaxConcurrent),
					"queue_depth":        float64(res.QueueDepth),
					"service_time_ms":    float64(res.ServiceTime.Microseconds()) / 1000,
					"capacity_rps":       res.CapacityRPS,
					"offered_rps":        res.OfferedRPS,
					"sent":               float64(res.Load.Sent),
					"accepted":           float64(res.Load.Accepted),
					"throughput_rps":     res.Load.Throughput,
					"shed":               float64(res.Load.Shed),
					"shed_rate":          res.Load.ShedRate,
					"errors":             float64(res.Load.Errors),
					"p50_ms":             float64(res.Load.P50.Microseconds()) / 1000,
					"p95_ms":             float64(res.Load.P95.Microseconds()) / 1000,
					"p99_ms":             float64(res.Load.P99.Microseconds()) / 1000,
					"quota_shed_429":     float64(res.QuotaShed429),
					"retry_after_always": boolStat(res.Load.RetryAfterOnAllSheds && res.QuotaRetryAfterOnAllShed),

					"coalesce_trees":            float64(res.Coalesce.Trees),
					"coalesce_solo_row_us":      float64(res.Coalesce.SoloRowCost.Nanoseconds()) / 1000,
					"coalesce_tiled_row_us":     float64(res.Coalesce.TiledRowCost.Nanoseconds()) / 1000,
					"coalesce_offered_rps":      res.Coalesce.OfferedRPS,
					"coalesce_off_rps":          res.Coalesce.Off.Throughput,
					"coalesce_on_rps":           res.Coalesce.On.Throughput,
					"coalesce_off_p99_ms":       float64(res.Coalesce.Off.P99.Microseconds()) / 1000,
					"coalesce_on_p99_ms":        float64(res.Coalesce.On.P99.Microseconds()) / 1000,
					"coalesce_throughput_ratio": res.Coalesce.ThroughputRatio,
					"coalesce_p99_ratio":        res.Coalesce.P99Ratio,
					"coalesce_mean_occupancy":   res.Coalesce.MeanOccupancy,
					"coalesce_sheds":            float64(res.Coalesce.CoalesceShed),
					"coalesce_bit_identical":    boolStat(res.Coalesce.BitIdentical),
				},
			})
			fmt.Fprintf(out, "[serve completed in %s]\n", time.Since(start).Round(time.Millisecond))
		},
		"table4": func() { run("table4", func() error { _, err := experiments.Table4(out, s); return err }) },
		"table5": func() { run("table5", func() error { _, err := experiments.Table5(out, s); return err }) },
		"table6": func() { run("table6", func() error { _, err := experiments.Table6(out, s); return err }) },
		"fig13":  func() { run("fig13", func() error { _, err := experiments.Fig13(out, s); return err }) },
		"fig14":  func() { run("fig14", func() error { _, err := experiments.Fig14(out, s); return err }) },
		"a1":     func() { run("a1", func() error { experiments.A1(out); return nil }) },
		"predict": func() {
			start := time.Now()
			res, err := experiments.Predict(out, s)
			if err != nil {
				log.Fatalf("predict: %v", err)
			}
			rep.Experiments = append(rep.Experiments, timing{
				Name:    "predict-engines",
				Seconds: time.Since(start).Seconds(),
				Stats: map[string]float64{
					"rows":                  float64(res.Rows),
					"trees":                 float64(res.Trees),
					"engine_nodes":          float64(res.EngineNodes),
					"engine_conditions":     float64(res.EngineConditions),
					"auto_backend_bv":       boolStat(res.Backend == "bitvector"),
					"compile_soa_ms":        float64(res.CompileSoA.Microseconds()) / 1000,
					"compile_bitvector_ms":  float64(res.CompileBitvector.Microseconds()) / 1000,
					"interpreted_ms":        float64(res.Interpreted.Microseconds()) / 1000,
					"soa_serial_ms":         float64(res.SoASerial.Microseconds()) / 1000,
					"soa_parallel_ms":       float64(res.SoAParallel.Microseconds()) / 1000,
					"bitvector_serial_ms":   float64(res.BitvectorSerial.Microseconds()) / 1000,
					"bitvector_parallel_ms": float64(res.BitvectorParallel.Microseconds()) / 1000,
					"bitvector_vs_soa":      res.Speedup(),
				},
			})
			fmt.Fprintf(out, "[predict completed in %s]\n", time.Since(start).Round(time.Millisecond))
		},
		"ooc": func() {
			start := time.Now()
			res, err := experiments.OOC(out, s)
			if err != nil {
				log.Fatalf("ooc: %v", err)
			}
			for _, l := range res.Levels {
				rep.Experiments = append(rep.Experiments, timing{
					Name:    fmt.Sprintf("ooc-budget-%s", l.Budget),
					Seconds: l.Wall.Seconds(),
					Stats: map[string]float64{
						"budget_bytes":       float64(l.Budget),
						"tracker_peak_bytes": float64(l.TrackerPeak),
						"rss_growth_bytes":   float64(l.RSSGrowth),
						"min_budget_bytes":   float64(res.MinBudget),
						"slack_bytes":        float64(experiments.OOCSlack),
						"file_bytes":         float64(res.FileBytes),
						"bit_identical":      boolStat(res.BitIdentical),
					},
				})
			}
			rep.Experiments = append(rep.Experiments, timing{
				Name:    "ooc-inmemory-baseline",
				Seconds: res.InMemoryWall.Seconds(),
			})
			fmt.Fprintf(out, "[ooc completed in %s]\n", time.Since(start).Round(time.Millisecond))
		},
		"comm": func() {
			start := time.Now()
			res, err := experiments.Comm(out, s)
			if err != nil {
				log.Fatalf("comm: %v", err)
			}
			for _, l := range res.Levels {
				rep.Experiments = append(rep.Experiments, timing{
					Name:    fmt.Sprintf("comm-%s", l.Name),
					Seconds: l.Wall.Seconds(),
					Stats: map[string]float64{
						"push_bits":       float64(l.Bits),
						"pull_bits":       float64(l.PullBits),
						"sparse":          boolStat(l.Sparse),
						"hist_bytes":      float64(l.HistBytes),
						"total_bytes":     float64(l.TotalBytes),
						"ratio_vs_raw":    l.RatioVsRaw,
						"val_error":       l.ValError,
						"ref_val_error":   res.RefError,
						"modeled_comm_ms": float64(l.ModeledComm.Microseconds()) / 1000,
						"sparse_bytes":    float64(l.EncodingBytes["sparse/encode"]),
						"exact_verified":  boolStat(res.ExactVerified),
					},
				})
			}
			fmt.Fprintf(out, "[comm completed in %s]\n", time.Since(start).Round(time.Millisecond))
		},
		"train-parallel": func() {
			start := time.Now()
			res, err := experiments.TrainParallel(out, s)
			if err != nil {
				log.Fatalf("train-parallel: %v", err)
			}
			for _, l := range res.Levels {
				rep.Experiments = append(rep.Experiments, timing{
					Name:        fmt.Sprintf("train-parallel-p%d", l.Parallelism),
					Seconds:     l.Total.Seconds(),
					Parallelism: l.Parallelism,
					Phases: map[string]float64{
						"gradients":  l.Phases.Gradients.Seconds(),
						"sketch":     l.Phases.Sketch.Seconds(),
						"build_hist": l.Phases.BuildHist.Seconds(),
						"find_split": l.Phases.FindSplit.Seconds(),
						"split_tree": l.Phases.SplitTree.Seconds(),
					},
				})
			}
			fmt.Fprintf(out, "[train-parallel completed in %s]\n", time.Since(start).Round(time.Millisecond))
		},
	}
	if cmd == "all" {
		for _, name := range []string{"fig1", "table1", "table3", "fig12", "table4", "table5", "table6", "fig13", "fig14", "a1", "predict", "train-parallel", "ooc", "comm", "serve"} {
			if name == "fig12" {
				for _, d := range []string{"rcv1", "synthesis", "gender"} {
					*ds = d
					dispatch["fig12"]()
				}
				continue
			}
			dispatch[name]()
		}
		return
	}
	f, ok := dispatch[cmd]
	if !ok {
		usage()
		os.Exit(2)
	}
	f()
}

// boolStat encodes a boolean into the numeric stats map.
func boolStat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dimboost-bench [flags] <experiment>

experiments:
  fig1     run time vs #features, XGBoost vs DimBoost
  table1   communication cost model of the four aggregation strategies
  table3   ablation of the six proposed optimizations
  fig12    end-to-end five-system comparison (-dataset rcv1|synthesis|gender)
  table4   impact of the parameter-server count
  table5   test error vs feature dimension
  table6   PCA dimension reduction vs direct training
  fig13    scalability with time breakdown (load/compute/comm)
  fig14    comparison on a low-dimensional dataset
  a1       unbiasedness of low-precision histograms
  predict  serving path: interpreted vs compiled inference engine
  train-parallel  training pool at parallelism 1/2/4/8, per-phase times, bit-identity check
  ooc      out-of-core training at three memory budgets: peak RSS vs budget, bit-identity check
  comm     bytes-on-wire ladder: raw vs fixed8 vs fixed8+sparse, exact-wire differential gate
  serve    overload admission: open-loop load past capacity, shed rate + latency percentiles
  all      everything, in paper order

-cpuprofile/-memprofile write pprof profiles; -json writes per-experiment
timings for run-over-run perf comparisons (see BENCH_baseline.json).

flags:`)
	flag.PrintDefaults()
}
