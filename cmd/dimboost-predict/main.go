// Command dimboost-predict scores a LibSVM dataset with a trained model and
// reports metrics (when labels are present) or writes raw predictions.
//
// Usage:
//
//	dimboost-predict -model model.bin -data test.libsvm -out preds.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dimboost"
)

func main() {
	var (
		modelPath   = flag.String("model", "model.bin", "trained model file")
		data        = flag.String("data", "", "data in LibSVM format (required)")
		features    = flag.Int("features", 0, "feature count (0 infers from data)")
		out         = flag.String("out", "", "write one prediction per line to this file")
		prob        = flag.Bool("prob", false, "output probabilities instead of raw scores (logistic models)")
		engine      = flag.String("engine", "auto", "scoring engine: auto, soa, bitvector, or interpreted")
		interpreted = flag.Bool("interpreted", false, "alias for -engine interpreted")
	)
	flag.Parse()
	if *data == "" {
		log.Fatal("-data is required")
	}

	m, err := dimboost.LoadModelFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	d, err := dimboost.ReadLibSVMFile(*data, *features)
	if err != nil {
		log.Fatal(err)
	}

	sel := *engine
	if *interpreted {
		sel = "interpreted"
	}
	var eng *dimboost.Engine
	if sel != "interpreted" {
		backend, err := dimboost.ParseEngineBackend(sel)
		if err != nil {
			log.Fatal(err)
		}
		if eng, err = m.CompiledBackend(backend); err != nil {
			log.Fatal(err)
		}
	}

	scoreStart := time.Now()
	var preds []float64
	path := "interpreted"
	if eng != nil {
		preds = eng.PredictBatch(d)
		path = eng.Backend().String()
	} else {
		preds = m.PredictBatchInterpreted(d)
	}
	scoreElapsed := time.Since(scoreStart)
	fmt.Printf("scored %d rows in %s (%s, %.0f rows/s)\n", d.NumRows(),
		scoreElapsed.Round(time.Microsecond), path,
		float64(d.NumRows())/scoreElapsed.Seconds())
	if m.Loss == dimboost.Logistic {
		auc, aucErr := dimboost.AUC(d.Labels, preds)
		fmt.Printf("%d rows: error %.4f  logloss %.4f", d.NumRows(),
			dimboost.ErrorRate(d.Labels, preds), dimboost.LogLoss(d.Labels, preds))
		if aucErr == nil {
			fmt.Printf("  auc %.4f", auc)
		}
		fmt.Println()
	} else {
		fmt.Printf("%d rows: rmse %.4f\n", d.NumRows(), dimboost.RMSE(d.Labels, preds))
	}

	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(f)
	for i, p := range preds {
		if *prob && m.Loss == dimboost.Logistic {
			p = m.PredictProb(d.Row(i))
		}
		fmt.Fprintf(w, "%g\n", p)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predictions written to %s\n", *out)
}
