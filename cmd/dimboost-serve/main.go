// Command dimboost-serve exposes a trained model over HTTP for online
// scoring.
//
// Usage:
//
//	dimboost-serve -model model.bin -listen :8080
//
// Endpoints: GET /healthz, GET /model, GET /importance?top=N,
// POST /predict (application/json or text/libsvm).
//
// Example request:
//
//	curl -s localhost:8080/predict -d '{"instances":[{"indices":[3,17],"values":[1.5,0.2]}]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"dimboost"
	"dimboost/internal/serve"
)

func main() {
	var (
		modelPath = flag.String("model", "model.bin", "trained model file")
		listen    = flag.String("listen", "127.0.0.1:8080", "listen address")
	)
	flag.Parse()

	m, err := dimboost.LoadModelFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	internal, leaves := m.NumNodes()
	fmt.Printf("serving %s model: %d trees, %d internal nodes, %d leaves\n",
		m.Loss, len(m.Trees), internal, leaves)

	srv := &http.Server{
		Addr:              *listen,
		Handler:           serve.New(m),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("listening on http://%s\n", *listen)
	log.Fatal(srv.ListenAndServe())
}
