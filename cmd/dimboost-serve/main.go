// Command dimboost-serve exposes a trained model over HTTP for online
// scoring, behind an overload-safe admission layer.
//
// Usage:
//
//	dimboost-serve -model model.bin -listen :8080 [-reload] [-drain-timeout 10s]
//	  [-max-concurrent 64] [-queue-depth 256] [-queue-timeout 250ms]
//	  [-coalesce] [-coalesce-window 500µs] [-coalesce-batch 256]
//	  [-quota-rate 100 -quota-burst 200] [-quota-overrides 'teamA=500:1000,teamB=5:5']
//	  [-probe-set probe.libsvm] [-probe-max-loss 0.7]
//
// Endpoints: GET /healthz (503 while draining), GET /model (includes the
// registry version history), GET /importance?top=N, POST /predict
// (application/json or text/libsvm), GET /metrics (Prometheus text),
// GET /debug/obs (JSON timeline).
//
// Admission: /predict work is bounded by -max-concurrent with a
// -queue-depth deep wait queue (each waiter bounded by -queue-timeout);
// excess load is shed with 503 + Retry-After. Per-tenant token-bucket
// quotas key on the X-Tenant header (absent = "default") and shed with
// 429 + Retry-After; -quota-rate/-quota-burst set the default bucket and
// -quota-overrides sets per-tenant shapes as name=rate:burst pairs.
//
// With -coalesce, admitted /predict requests are merged server-side into
// engine-sized scoring batches: a request waits at most -coalesce-window
// for companions (an uncontended request never waits), batches cap at
// -coalesce-batch instances, and scores are bit-identical to scoring each
// request alone. See dimboost_serve_coalesce_* metrics.
//
// With -reload, POST /model/reload or SIGHUP re-reads the model file and
// swaps it in through the validated registry: the incoming model must
// compile and, when -probe-set is given, score the probe set finitely
// (and under -probe-max-loss when set) — otherwise the previous version
// keeps serving (auto-rollback, visible as
// dimboost_serve_rollbacks_total and the retained version on /model).
//
// SIGINT/SIGTERM drain gracefully: /healthz flips to 503, new /predict
// work is refused immediately, queued and in-flight requests finish
// (bounded by -drain-timeout, after which remaining connections are
// force-closed), then the process exits.
//
// Example request:
//
//	curl -s localhost:8080/predict -d '{"instances":[{"indices":[3,17],"values":[1.5,0.2]}]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dimboost"
	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/serve"
)

func main() {
	var (
		modelPath    = flag.String("model", "model.bin", "trained model file")
		listen       = flag.String("listen", "127.0.0.1:8080", "listen address")
		reload       = flag.Bool("reload", false, "enable POST /model/reload and SIGHUP model reloading")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")

		maxConcurrent = flag.Int("max-concurrent", 0, "max concurrent /predict requests (0 = 4×GOMAXPROCS, -1 = unlimited)")
		queueDepth    = flag.Int("queue-depth", 0, "admission wait-queue depth (0 = 4×max-concurrent)")
		queueTimeout  = flag.Duration("queue-timeout", 250*time.Millisecond, "max time a request may wait for admission")

		coalesce       = flag.Bool("coalesce", false, "merge concurrent /predict requests into engine-sized scoring batches")
		coalesceWindow = flag.Duration("coalesce-window", 500*time.Microsecond, "max time a request lingers waiting for batch companions")
		coalesceBatch  = flag.Int("coalesce-batch", 0, "max instances per coalesced batch (0 = engine-preferred)")

		quotaRate      = flag.Float64("quota-rate", 0, "default per-tenant quota, requests/sec (0 = quotas disabled)")
		quotaBurst     = flag.Float64("quota-burst", 0, "default per-tenant burst (0 = same as -quota-rate)")
		quotaOverrides = flag.String("quota-overrides", "", "per-tenant buckets, e.g. 'teamA=500:1000,teamB=5:5' (rate:burst)")

		probeSet     = flag.String("probe-set", "", "LibSVM file scored to validate every reloaded model before swap")
		probeMaxLoss = flag.Float64("probe-max-loss", 0, "reject reloaded models whose probe mean loss exceeds this (0 = finiteness check only)")
	)
	flag.Parse()

	m, err := dimboost.LoadModelFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	internal, leaves := m.NumNodes()
	fmt.Printf("serving %s model: %d trees, %d internal nodes, %d leaves\n",
		m.Loss, len(m.Trees), internal, leaves)

	h := serve.New(m)
	if *reload {
		h.OnReload = func() (*core.Model, error) { return dimboost.LoadModelFile(*modelPath) }
	}

	if *maxConcurrent >= 0 {
		mc := *maxConcurrent
		if mc == 0 {
			mc = 4 * runtime.GOMAXPROCS(0)
		}
		qd := *queueDepth
		if qd == 0 {
			qd = 4 * mc
		}
		h.Limiter = serve.NewLimiter(serve.AdmissionConfig{
			MaxConcurrent: mc, QueueDepth: qd, QueueTimeout: *queueTimeout,
		})
		fmt.Printf("admission: %d concurrent, queue %d deep, %s queue timeout\n", mc, qd, *queueTimeout)
	}

	if *quotaRate > 0 || *quotaOverrides != "" {
		burst := *quotaBurst
		if burst <= 0 {
			burst = *quotaRate
		}
		q := serve.NewQuotas(serve.QuotaConfig{Rate: *quotaRate, Burst: burst})
		overrides, err := parseQuotaOverrides(*quotaOverrides)
		if err != nil {
			log.Fatalf("-quota-overrides: %v", err)
		}
		for tenant, cfg := range overrides {
			q.SetTenant(tenant, cfg)
		}
		h.Quota = q
		fmt.Printf("quotas: default %g req/s burst %g, %d overrides (X-Tenant header)\n",
			*quotaRate, burst, len(overrides))
	}

	if *coalesce {
		c := h.EnableCoalescing(serve.CoalesceConfig{Window: *coalesceWindow, MaxBatch: *coalesceBatch})
		fmt.Printf("coalescing: window %s, batch cap %d\n", *coalesceWindow, c.Config().MaxBatch)
	}

	if *probeSet != "" {
		probe, err := dataset.ReadLibSVMFile(*probeSet, 0)
		if err != nil {
			log.Fatalf("-probe-set: %v", err)
		}
		h.Registry().Validate = serve.ProbeValidator(probe, *probeMaxLoss)
		fmt.Printf("reload validation: %d-row probe set", probe.NumRows())
		if *probeMaxLoss > 0 {
			fmt.Printf(", mean loss limit %g", *probeMaxLoss)
		}
		fmt.Println()
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sig := range sigs {
			if sig == syscall.SIGHUP {
				if h.OnReload == nil {
					log.Print("SIGHUP ignored: run with -reload to enable model reloading")
					continue
				}
				nm, err := h.OnReload()
				if err != nil {
					log.Printf("SIGHUP reload failed: %v", err)
					continue
				}
				if err := h.Swap(nm); err != nil {
					log.Printf("SIGHUP reload rejected: %v", err)
					continue
				}
				log.Printf("SIGHUP reload: %d trees", len(nm.Trees))
				continue
			}
			// SIGINT/SIGTERM: stop advertising health, drain, exit. If the
			// drain deadline passes with connections still open, force-close
			// them — a stuck client must not hold the process past
			// -drain-timeout.
			log.Printf("%s: draining (up to %s)", sig, *drainTimeout)
			h.SetDraining(true)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			if err := srv.Shutdown(ctx); err != nil {
				log.Printf("shutdown: %v; force-closing remaining connections", err)
				srv.Close() //nolint:errcheck
			}
			cancel()
			// With HTTP fully stopped, flush any requests still parked in
			// the coalescer (each belongs to an in-flight handler).
			h.Close()
			return
		}
	}()

	fmt.Printf("listening on http://%s\n", *listen)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}

// parseQuotaOverrides parses 'tenant=rate:burst,...' into per-tenant
// bucket shapes.
func parseQuotaOverrides(s string) (map[string]serve.QuotaConfig, error) {
	out := map[string]serve.QuotaConfig{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, spec, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad entry %q (want tenant=rate:burst)", part)
		}
		rateStr, burstStr, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, fmt.Errorf("bad entry %q (want tenant=rate:burst)", part)
		}
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate in %q: %v", part, err)
		}
		burst, err := strconv.ParseFloat(burstStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad burst in %q: %v", part, err)
		}
		out[name] = serve.QuotaConfig{Rate: rate, Burst: burst}
	}
	return out, nil
}
