// Command dimboost-serve exposes a trained model over HTTP for online
// scoring.
//
// Usage:
//
//	dimboost-serve -model model.bin -listen :8080 [-reload] [-drain-timeout 10s]
//
// Endpoints: GET /healthz (503 while draining), GET /model,
// GET /importance?top=N, POST /predict (application/json or text/libsvm),
// GET /metrics (Prometheus text), GET /debug/obs (JSON timeline).
// With -reload, POST /model/reload or SIGHUP re-reads the model file and
// swaps it in atomically.
//
// SIGINT/SIGTERM drain gracefully: /healthz flips to 503, in-flight
// requests finish (bounded by -drain-timeout), then the process exits.
//
// Example request:
//
//	curl -s localhost:8080/predict -d '{"instances":[{"indices":[3,17],"values":[1.5,0.2]}]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dimboost"
	"dimboost/internal/core"
	"dimboost/internal/serve"
)

func main() {
	var (
		modelPath    = flag.String("model", "model.bin", "trained model file")
		listen       = flag.String("listen", "127.0.0.1:8080", "listen address")
		reload       = flag.Bool("reload", false, "enable POST /model/reload and SIGHUP model reloading")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
	)
	flag.Parse()

	m, err := dimboost.LoadModelFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	internal, leaves := m.NumNodes()
	fmt.Printf("serving %s model: %d trees, %d internal nodes, %d leaves\n",
		m.Loss, len(m.Trees), internal, leaves)

	h := serve.New(m)
	if *reload {
		h.OnReload = func() (*core.Model, error) { return dimboost.LoadModelFile(*modelPath) }
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sig := range sigs {
			if sig == syscall.SIGHUP {
				if h.OnReload == nil {
					log.Print("SIGHUP ignored: run with -reload to enable model reloading")
					continue
				}
				nm, err := h.OnReload()
				if err != nil {
					log.Printf("SIGHUP reload failed: %v", err)
					continue
				}
				h.Swap(nm)
				log.Printf("SIGHUP reload: %d trees", len(nm.Trees))
				continue
			}
			// SIGINT/SIGTERM: stop advertising health, drain, exit.
			log.Printf("%s: draining (up to %s)", sig, *drainTimeout)
			h.SetDraining(true)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			if err := srv.Shutdown(ctx); err != nil {
				log.Printf("shutdown: %v", err)
			}
			cancel()
			return
		}
	}()

	fmt.Printf("listening on http://%s\n", *listen)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}
