// Package dimboost is a from-scratch Go implementation of DimBoost
// (SIGMOD'18), a gradient boosting decision tree (GBDT) training system
// designed for high-dimensional sparse data.
//
// The package trains GBDT models on a single machine or across an
// in-process parameter-server cluster, with the paper's optimizations:
// sparsity-aware histogram construction, parallel batch building over a
// node-to-instance index, low-precision (8-bit) gradient histograms, a
// round-robin split-task scheduler, and two-phase split finding.
//
// Quickstart:
//
//	train, test := dimboost.GenerateTrainTest(dimboost.SyntheticConfig{
//		NumRows: 10000, NumFeatures: 10000, AvgNNZ: 50, Seed: 1,
//	})
//	model, err := dimboost.Train(train, dimboost.DefaultConfig())
//	...
//	preds := model.PredictBatch(test)
//	fmt.Println(dimboost.ErrorRate(test.Labels, preds))
package dimboost

import (
	"io"

	"dimboost/internal/cluster"
	"dimboost/internal/core"
	"dimboost/internal/cv"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
	"dimboost/internal/ooc"
	"dimboost/internal/pca"
	"dimboost/internal/predict"
	"dimboost/internal/serve"
	"dimboost/internal/transport"
	"dimboost/internal/tune"
)

// Config holds the GBDT hyper-parameters (trees, depth, split candidates,
// shrinkage, regularization, sampling, threading). See core.Config for
// field documentation.
type Config = core.Config

// DefaultConfig mirrors the paper's experimental protocol.
func DefaultConfig() Config { return core.DefaultConfig() }

// Model is a trained GBDT ensemble.
type Model = core.Model

// Engine is the compiled inference engine backing Model.PredictBatch. The
// ensemble compiles to one of two backends over a compact feature space —
// the structure-of-arrays root-to-leaf walk, or the QuickScorer-style
// bitvector traversal when every tree fits the 64-leaf mask width — and
// both are bit-identical to the interpreted tree walk. Obtain one with
// Model.Compiled (automatic backend selection) or Model.CompiledBackend
// for allocation-free serving loops.
type Engine = predict.Engine

// EngineBackend selects the Engine's scoring representation; see
// Model.CompiledBackend.
type EngineBackend = predict.Backend

const (
	// BackendAuto picks the bitvector backend when the ensemble is
	// eligible and the SoA walk otherwise.
	BackendAuto = predict.BackendAuto
	// BackendSoA forces the structure-of-arrays root-to-leaf walk.
	BackendSoA = predict.BackendSoA
	// BackendBitvector forces the QuickScorer-style bitvector traversal;
	// compiling fails if any tree exceeds the leaf-mask width.
	BackendBitvector = predict.BackendBitvector
)

// ParseEngineBackend maps a selector string ("auto", "soa", "bitvector") to
// an EngineBackend.
func ParseEngineBackend(s string) (EngineBackend, error) { return predict.ParseBackend(s) }

// Trainer runs single-process training with progress callbacks and phase
// timing.
type Trainer = core.Trainer

// TreeEvent reports per-tree training progress.
type TreeEvent = core.TreeEvent

// NewTrainer validates the configuration and prepares a trainer.
func NewTrainer(d *Dataset, cfg Config) (*Trainer, error) { return core.NewTrainer(d, cfg) }

// Train fits a GBDT model on a single machine using all configured
// parallelism.
func Train(d *Dataset, cfg Config) (*Model, error) { return core.Train(d, cfg) }

// MemoryBudget bounds the resident bytes of out-of-core training; see
// Config.MemoryBudget and TrainOutOfCore.
type MemoryBudget = ooc.Budget

// ParseMemoryBudget parses a human-readable byte size ("512MiB", "2g",
// "65536") into a MemoryBudget; empty and "0" mean unlimited.
func ParseMemoryBudget(s string) (MemoryBudget, error) { return ooc.ParseBudget(s) }

// BudgetError reports a memory budget below the minimum working set of
// out-of-core training; its Min field carries the smallest admissible
// budget for the same dataset and parallelism.
type BudgetError = ooc.BudgetError

// TrainOutOfCore fits a GBDT model from a binary dataset file (see
// WriteBinaryFile) while keeping resident data under cfg.MemoryBudget: the
// dataset streams from disk through a bounded chunk cache and each tree's
// quantized mirror spills to scratch files. The trained model is
// Float64bits-identical to Train on the same data. Budgets below the
// minimum working set fail fast with a *BudgetError.
func TrainOutOfCore(path string, cfg Config) (*Model, error) {
	return core.TrainOutOfCore(path, cfg)
}

// LoadModel reads a model written by Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// LoadModelFile reads a model from a file.
func LoadModelFile(path string) (*Model, error) { return core.LoadFile(path) }

// ClusterConfig extends Config with cluster topology (workers, parameter
// servers) and the paper's communication options (compression bits,
// two-phase split finding, scheduler).
type ClusterConfig = cluster.Config

// ClusterResult is a distributed run's model plus traffic and timing
// statistics.
type ClusterResult = cluster.Result

// ClusterStats aggregates a distributed run's measurements.
type ClusterStats = cluster.Stats

// DefaultClusterConfig returns the paper's protocol for w workers and p
// parameter servers (8-bit compressed histograms, two-phase split finding,
// round-robin scheduler).
func DefaultClusterConfig(workers, servers int) ClusterConfig {
	return cluster.DefaultConfig(workers, servers)
}

// TrainDistributed trains over an in-process parameter-server cluster:
// p servers, one master, and w workers exchanging messages over a metered
// in-memory transport.
func TrainDistributed(d *Dataset, cfg ClusterConfig) (*ClusterResult, error) {
	return cluster.Train(d, cfg)
}

// Checkpoint is the per-tree training state a distributed run persists,
// enough to resume a killed run at tree k with a bit-identical trajectory.
type Checkpoint = cluster.Checkpoint

// CheckpointSink receives encoded checkpoints after every finished tree.
type CheckpointSink = cluster.CheckpointSink

// DirCheckpointSink persists checkpoints into a directory, atomically
// replacing a single rotating file.
type DirCheckpointSink = cluster.DirSink

// NewDirCheckpointSink creates (if needed) a checkpoint directory and
// returns a sink over it; assign it to ClusterConfig.Checkpoint.
func NewDirCheckpointSink(dir string) (*DirCheckpointSink, error) { return cluster.NewDirSink(dir) }

// LoadCheckpoint reads the latest checkpoint from a sink directory; it
// returns (nil, nil) when no checkpoint exists yet.
func LoadCheckpoint(dir string) (*Checkpoint, error) { return cluster.LoadCheckpoint(dir) }

// RetryPolicy shapes the capped exponential backoff applied to
// worker→server RPCs when assigned to ClusterConfig.Retry.
type RetryPolicy = transport.RetryPolicy

// DefaultRetryPolicy is the cluster runtime's standard worker→server retry
// policy: 5 attempts, 10ms base delay doubling to a 2s cap, 25% jitter.
func DefaultRetryPolicy() RetryPolicy { return transport.DefaultRetryPolicy() }

// Dataset is a sparse (CSR) labeled dataset.
type Dataset = dataset.Dataset

// Instance is one sparse row of a Dataset.
type Instance = dataset.Instance

// Builder incrementally assembles a Dataset.
type Builder = dataset.Builder

// NewBuilder returns a dataset builder for the given dimensionality
// (0 infers it).
func NewBuilder(numFeatures int) *Builder { return dataset.NewBuilder(numFeatures) }

// FromDense converts a dense matrix and labels into a Dataset.
func FromDense(rows [][]float32, labels []float32) (*Dataset, error) {
	return dataset.FromDense(rows, labels)
}

// ReadLibSVM parses LibSVM-format data (1-based feature indices).
func ReadLibSVM(r io.Reader, numFeatures int) (*Dataset, error) {
	return dataset.ReadLibSVM(r, numFeatures)
}

// ReadLibSVMFile reads a LibSVM file.
func ReadLibSVMFile(path string, numFeatures int) (*Dataset, error) {
	return dataset.ReadLibSVMFile(path, numFeatures)
}

// WriteLibSVM writes a dataset in LibSVM format.
func WriteLibSVM(w io.Writer, d *Dataset) error { return dataset.WriteLibSVM(w, d) }

// WriteLibSVMFile writes a LibSVM file.
func WriteLibSVMFile(path string, d *Dataset) error { return dataset.WriteLibSVMFile(path, d) }

// WriteBinary / ReadBinary use the compact binary dataset format, which
// loads far faster than LibSVM text.
func WriteBinaryFile(path string, d *Dataset) error { return dataset.WriteBinaryFile(path, d) }
func ReadBinaryFile(path string) (*Dataset, error)  { return dataset.ReadBinaryFile(path) }
func WriteBinary(w io.Writer, d *Dataset) error     { return dataset.WriteBinary(w, d) }
func ReadBinary(r io.Reader) (*Dataset, error)      { return dataset.ReadBinary(r) }

// ReadBinaryChunks streams a binary dataset file in bounded row chunks for
// out-of-core processing.
func ReadBinaryChunks(path string, chunkRows int, fn func(lo, hi int, chunk *Dataset) error) error {
	return dataset.ReadBinaryChunks(path, chunkRows, fn)
}

// TuneAxis is one hyper-parameter dimension of a tuning grid; TuneCandidate
// one grid point; TuneOutcome its cross-validated score.
type (
	TuneAxis      = tune.Axis
	TuneCandidate = tune.Candidate
	TuneOutcome   = tune.Outcome
)

// TuneGrid expands a cartesian hyper-parameter grid over a base config; see
// tune.LearningRate, tune.MaxDepth, tune.Lambda, tune.NumCandidates,
// tune.FeatureSample for ready-made axes (re-exported below).
func TuneGrid(base Config, axes ...TuneAxis) []TuneCandidate { return tune.Grid(base, axes...) }

// TuneSearch cross-validates every candidate and returns them best-first.
func TuneSearch(d *Dataset, candidates []TuneCandidate, k int, seed int64) ([]TuneOutcome, error) {
	return tune.Search(d, candidates, k, seed)
}

// Ready-made tuning axes.
var (
	AxisLearningRate  = tune.LearningRate
	AxisMaxDepth      = tune.MaxDepth
	AxisLambda        = tune.Lambda
	AxisNumCandidates = tune.NumCandidates
	AxisFeatureSample = tune.FeatureSample
)

// SyntheticConfig describes a synthetic sparse dataset generator.
type SyntheticConfig = dataset.SyntheticConfig

// Generate builds a synthetic dataset from a sparse ground-truth linear
// model.
func Generate(cfg SyntheticConfig) *Dataset { return dataset.Generate(cfg) }

// GenerateTrainTest generates and splits a synthetic dataset 90/10, the
// paper's protocol.
func GenerateTrainTest(cfg SyntheticConfig) (train, test *Dataset) {
	return dataset.GenerateTrainTest(cfg)
}

// RCV1Like / SynthesisLike / GenderLike / Synthesis2Like return generator
// configs shaped like the paper's evaluation datasets (Table 2, App. A.3),
// with caller-chosen row counts.
func RCV1Like(rows int, seed int64) SyntheticConfig      { return dataset.RCV1Like(rows, seed) }
func SynthesisLike(rows int, seed int64) SyntheticConfig { return dataset.SynthesisLike(rows, seed) }
func GenderLike(rows int, seed int64) SyntheticConfig    { return dataset.GenderLike(rows, seed) }
func Synthesis2Like(rows int, seed int64) SyntheticConfig {
	return dataset.Synthesis2Like(rows, seed)
}

// LossKind selects the training objective.
type LossKind = loss.Kind

// Available objectives.
const (
	// Logistic is binary cross-entropy (labels in {0,1}).
	Logistic = loss.Logistic
	// Squared is ½(y−ŷ)² regression loss.
	Squared = loss.Squared
)

// ErrorRate is the binary classification error of raw-score predictions.
func ErrorRate(labels []float32, preds []float64) float64 { return loss.ErrorRate(labels, preds) }

// RMSE is the root mean squared error of raw predictions.
func RMSE(labels []float32, preds []float64) float64 { return loss.RMSE(labels, preds) }

// AUC is the area under the ROC curve for binary labels.
func AUC(labels []float32, preds []float64) (float64, error) { return loss.AUC(labels, preds) }

// LogLoss is the mean logistic loss of raw-score (logit) predictions.
func LogLoss(labels []float32, preds []float64) float64 {
	return loss.MeanLoss(loss.New(loss.Logistic), labels, preds)
}

// CVResult aggregates k-fold cross-validation scores.
type CVResult = cv.Result

// CrossValidate runs k-fold cross-validation of the given configuration.
func CrossValidate(d *Dataset, cfg Config, k int, seed int64) (*CVResult, error) {
	return cv.Run(d, cfg, k, seed)
}

// ModelHandler returns an http.Handler that serves the model for online
// scoring (GET /healthz, GET /model, GET /importance, POST /predict) and
// supports atomic hot swaps via its Swap method.
func ModelHandler(m *Model) *serve.Handler { return serve.New(m) }

// PCAResult is a fitted principal-component model (the paper's Table 6
// dimension-reduction comparison).
type PCAResult = pca.Result

// PCAOptions tune the randomized PCA algorithm.
type PCAOptions = pca.Options

// FitPCA computes the top-k principal components of a sparse dataset.
func FitPCA(d *Dataset, k int, opts PCAOptions) (*PCAResult, error) { return pca.Fit(d, k, opts) }
