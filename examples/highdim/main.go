// Command highdim reproduces the paper's motivating scenario at laptop
// scale: a Gender-like dataset (330K features, ~107 nonzeros per row),
// trained at several feature-dimension cutoffs to show that accuracy grows
// with dimensionality (the paper's Table 5) — the reason the system must
// scale to high dimensions instead of truncating features.
package main

import (
	"fmt"
	"log"
	"time"

	"dimboost"
)

func main() {
	cfg := dimboost.GenderLike(20_000, 7)
	full := dimboost.Generate(cfg)
	fmt.Printf("generated Gender-like data: %d rows × %d features (%.0f nnz/row)\n",
		full.NumRows(), full.NumFeatures, full.AvgNNZ())

	train, test := full.Split(0.9)

	tcfg := dimboost.DefaultConfig()
	tcfg.NumTrees = 15
	tcfg.MaxDepth = 6

	fmt.Println("\n  #features   test-error    auc     train-time")
	for _, m := range []int{10_000, 100_000, 330_000} {
		trainM := train.SelectFeatures(m)
		testM := test.SelectFeatures(m)
		start := time.Now()
		model, err := dimboost.Train(trainM, tcfg)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		preds := model.PredictBatch(testM)
		auc, err := dimboost.AUC(testM.Labels, preds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %9d   %.4f      %.4f   %s\n",
			m, dimboost.ErrorRate(testM.Labels, preds), auc, elapsed.Round(time.Millisecond))
	}
	fmt.Println("\nmore features → lower error: truncating the feature space loses real signal.")
}
