// Command quickstart is the 30-second tour: generate a synthetic sparse
// classification dataset, train a GBDT model with the default
// configuration, and print held-out metrics.
package main

import (
	"fmt"
	"log"
	"time"

	"dimboost"
)

func main() {
	// A small high-dimensional sparse dataset: 10K rows, 5K features,
	// ~30 nonzeros per row.
	train, test := dimboost.GenerateTrainTest(dimboost.SyntheticConfig{
		NumRows:     10_000,
		NumFeatures: 5_000,
		AvgNNZ:      30,
		NoiseStd:    0.2,
		Zipf:        1.3,
		Seed:        42,
	})
	fmt.Printf("train: %d rows × %d features (%.0f nnz/row)\n",
		train.NumRows(), train.NumFeatures, train.AvgNNZ())

	cfg := dimboost.DefaultConfig()
	cfg.NumTrees = 20
	cfg.MaxDepth = 6

	start := time.Now()
	tr, err := dimboost.NewTrainer(train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tr.OnTree = func(e dimboost.TreeEvent) {
		if (e.Tree+1)%5 == 0 {
			fmt.Printf("  tree %2d  train-loss %.4f  (%s)\n", e.Tree+1, e.TrainLoss, e.Elapsed.Round(time.Millisecond))
		}
	}
	model, err := tr.Train()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d trees in %s\n", len(model.Trees), time.Since(start).Round(time.Millisecond))

	preds := model.PredictBatch(test)
	auc, err := dimboost.AUC(test.Labels, preds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out: error %.4f  auc %.4f  logloss %.4f\n",
		dimboost.ErrorRate(test.Labels, preds), auc, dimboost.LogLoss(test.Labels, preds))
}
