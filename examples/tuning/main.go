// Command tuning demonstrates hyper-parameter selection: a grid over
// learning rate and tree depth, scored by 3-fold cross-validation.
package main

import (
	"fmt"
	"log"

	"dimboost"
)

func main() {
	d := dimboost.Generate(dimboost.SyntheticConfig{
		NumRows:     4_000,
		NumFeatures: 1_000,
		AvgNNZ:      20,
		NoiseStd:    0.4,
		Zipf:        1.3,
		Seed:        21,
	})

	base := dimboost.DefaultConfig()
	base.NumTrees = 10

	grid := dimboost.TuneGrid(base,
		dimboost.AxisLearningRate(0.05, 0.1, 0.3),
		dimboost.AxisMaxDepth(3, 5, 7),
	)
	fmt.Printf("searching %d candidates with 3-fold cross-validation...\n\n", len(grid))

	outcomes, err := dimboost.TuneSearch(d, grid, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %12s %10s\n", "candidate", "mean error", "std")
	for _, o := range outcomes {
		fmt.Printf("%-22s %12.4f %10.4f\n", o.Name, o.CV.Mean, o.CV.Std)
	}
	best := outcomes[0]
	fmt.Printf("\nwinner: %s\n", best.Name)

	model, err := dimboost.Train(d, best.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final model trained on all data: %d trees\n", len(model.Trees))
}
