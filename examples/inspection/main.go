// Command inspection demonstrates model analysis and training control:
// early stopping on a validation split, gain-based feature importance, the
// per-tree leaf transform, and the human-readable model dump.
package main

import (
	"fmt"
	"log"
	"os"

	"dimboost"
)

func main() {
	full := dimboost.Generate(dimboost.SyntheticConfig{
		NumRows:     15_000,
		NumFeatures: 2_000,
		AvgNNZ:      25,
		NoiseStd:    0.6,
		Zipf:        1.3,
		Seed:        9,
	})
	train, rest := full.Split(0.7)
	val, test := rest.Split(0.5)

	cfg := dimboost.DefaultConfig()
	cfg.NumTrees = 200 // early stopping decides the real count
	cfg.MaxDepth = 5
	cfg.LearningRate = 0.2
	cfg.EarlyStoppingRounds = 8
	cfg.InstanceSampleRatio = 0.8 // stochastic gradient boosting
	cfg.HistSubtraction = true    // sibling histograms by subtraction

	tr, err := dimboost.NewTrainer(train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tr.Validation = val
	model, err := tr.Train()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("early stopping kept %d of %d trees (best validation loss %.4f)\n",
		len(model.Trees), cfg.NumTrees, tr.BestValidationLoss)

	preds := model.PredictBatch(test)
	auc, _ := dimboost.AUC(test.Labels, preds)
	fmt.Printf("held-out: error %.4f  auc %.4f\n\n", dimboost.ErrorRate(test.Labels, preds), auc)

	fmt.Println("top 10 features by gain:")
	for i, fi := range model.Importance() {
		if i >= 10 {
			break
		}
		fmt.Printf("  f%-6d gain %8.2f  splits %d\n", fi.Feature, fi.Gain, fi.Splits)
	}

	internal, leaves := model.NumNodes()
	fmt.Printf("\nmodel size: %d internal nodes, %d leaves\n", internal, leaves)

	fmt.Printf("\nleaf transform of row 0 (leaf index per tree, first 8 trees): %v\n",
		model.PredictLeaves(test.Row(0))[:min(8, len(model.Trees))])

	fmt.Println("\nfirst tree:")
	one := &dimboost.Model{Loss: model.Loss, Trees: model.Trees[:1]}
	if err := one.Dump(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
