// Command regression trains a squared-loss GBDT regressor, saves the model
// to disk, reloads it, and verifies the round trip — the model-management
// workflow of a production deployment.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dimboost"
)

func main() {
	train, test := dimboost.GenerateTrainTest(dimboost.SyntheticConfig{
		NumRows:     12_000,
		NumFeatures: 3_000,
		AvgNNZ:      25,
		Regression:  true,
		NoiseStd:    0.1,
		Zipf:        1.3,
		Seed:        5,
	})

	cfg := dimboost.DefaultConfig()
	cfg.Loss = dimboost.Squared
	cfg.NumTrees = 30
	cfg.MaxDepth = 6
	cfg.LearningRate = 0.15

	model, err := dimboost.Train(train, cfg)
	if err != nil {
		log.Fatal(err)
	}

	zero := make([]float64, test.NumRows())
	fmt.Printf("baseline RMSE (predict 0): %.4f\n", dimboost.RMSE(test.Labels, zero))
	fmt.Printf("model    RMSE           : %.4f\n", dimboost.RMSE(test.Labels, model.PredictBatch(test)))

	dir, err := os.MkdirTemp("", "dimboost-regression")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.bin")
	if err := model.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("saved model: %s (%d bytes, %d trees)\n", path, info.Size(), len(model.Trees))

	back, err := dimboost.LoadModelFile(path)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		in := test.Row(i)
		fmt.Printf("row %d: label %+.3f  prediction %+.3f  (reloaded %+.3f)\n",
			i, in.Label, model.Predict(in), back.Predict(in))
	}
}
