// Command distributed trains over an in-process parameter-server cluster
// and demonstrates the paper's communication optimizations: it compares
// full-precision vs 8-bit compressed histograms and two-phase vs raw-shard
// split finding, printing the traffic each configuration moves.
package main

import (
	"fmt"
	"log"
	"time"

	"dimboost"
)

func main() {
	train, test := dimboost.GenerateTrainTest(dimboost.SyntheticConfig{
		NumRows:     8_000,
		NumFeatures: 20_000,
		AvgNNZ:      60,
		NoiseStd:    0.2,
		Zipf:        1.3,
		Seed:        11,
	})
	fmt.Printf("data: %d rows × %d features; cluster: 4 workers, 4 parameter servers\n\n",
		train.NumRows(), train.NumFeatures)

	type variant struct {
		name   string
		mutate func(*dimboost.ClusterConfig)
	}
	variants := []variant{
		{"full-precision, two-phase", func(c *dimboost.ClusterConfig) { c.Bits = 0 }},
		{"8-bit compressed, two-phase (DimBoost default)", func(c *dimboost.ClusterConfig) { c.Bits = 8 }},
		{"full-precision, raw-shard pulls (no two-phase)", func(c *dimboost.ClusterConfig) {
			c.Bits = 0
			c.DisableTwoPhase = true
		}},
	}

	fmt.Printf("%-48s %10s %12s %12s %9s\n", "configuration", "time", "bytes moved", "modeled-comm", "test-err")
	for _, v := range variants {
		cfg := dimboost.DefaultClusterConfig(4, 4)
		cfg.NumTrees = 10
		cfg.MaxDepth = 6
		v.mutate(&cfg)

		start := time.Now()
		res, err := dimboost.TrainDistributed(train, cfg)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		preds := res.Model.PredictBatch(test)
		fmt.Printf("%-48s %10s %12d %12s %9.4f\n",
			v.name,
			elapsed.Round(time.Millisecond),
			res.Stats.TotalBytes,
			res.Stats.ModeledCommTime.Round(time.Microsecond),
			dimboost.ErrorRate(test.Labels, preds))
	}
	fmt.Println("\ncompression cuts bytes ~4x with no accuracy loss; two-phase split finding")
	fmt.Println("replaces histogram-sized pulls with one split record per server.")
}
